// Scenario configuration: one struct describing a complete experiment, with
// defaults matching the paper's large-scale NS-3 setup (Sec. IV-A.1):
// up to 500 nodes within 5 km of one gateway, sampling periods drawn from
// [16, 60] minutes, 1-minute forecast windows, w_b = 1, insulated batteries
// at 25 C, and a solar source sized so peak generation comfortably covers
// transmissions (the paper scales its NREL trace the same way).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "audit/audit.hpp"
#include "common/units.hpp"
#include "core/theta_controller.hpp"
#include "core/utility.hpp"
#include "degradation/model.hpp"
#include "energy/solar.hpp"
#include "energy/thermal.hpp"
#include "fault/fault_plan.hpp"
#include "net/interferer_config.hpp"
#include "lora/link.hpp"
#include "lora/params.hpp"
#include "mac/adr.hpp"
#include "mac/device_mac.hpp"

namespace blam {

enum class PolicyKind {
  /// Plain LoRaWAN pure-ALOHA baseline.
  kLorawan,
  /// The proposed protocol (Algorithm 1 + theta cap); H-5/H-50/H-100.
  kBlam,
  /// Theta cap without window selection (paper's H-50C ablation).
  kThetaOnly,
  /// Energy-aware but lifespan-oblivious baseline: always the greenest
  /// window, no theta cap (network-lifetime-maximization stand-in).
  kGreedyGreen,
};

enum class UtilityKind { kLinear, kExponential, kStep };

enum class SfAssignment {
  /// Minimum SF that closes the uplink (NS-3's SetSpreadingFactorsUp).
  kDistanceBased,
  /// Every node uses `fixed_sf` (the paper's testbed uses SF10).
  kFixed,
};

struct ScenarioConfig {
  std::string label{"scenario"};
  std::uint64_t seed{42};

  // --- Topology -----------------------------------------------------------
  int n_nodes{100};
  double radius_m{5000.0};
  /// Gateways: one at the centre (the paper's setup), or several spread on
  /// a ring at gateway_ring_fraction * radius_m ("one or more gateways").
  int n_gateways{1};
  double gateway_ring_fraction{0.5};
  /// City-scale layout: > 0 places the gateways on a centred square grid
  /// with this pitch instead of the centre/ring rule, and scatters each
  /// node inside a disk of cluster_radius_m around gateway (i mod G). This
  /// is the sharded-deployment topology — with a finite audibility floor
  /// (below) the per-cell collision domains decouple exactly.
  double gateway_grid_pitch_m{0.0};
  double cluster_radius_m{0.0};
  /// Gateway audibility floor: an uplink arriving below this power is
  /// dropped before it enters the interference tracker (counted as
  /// lost_under_sensitivity). The default is physically unreachable for
  /// every committed scenario (> 500 dB of path loss), so results are
  /// bit-identical to a build without the knob; a finite floor bounds each
  /// gateway's collision domain so the shard planner can split the
  /// deployment exactly. Must stay <= the SF12 gateway sensitivity.
  double interference_floor_dbm{-500.0};

  // --- Sharding -------------------------------------------------------------
  /// Conservative time-windowed parallel engine: split the deployment into
  /// this many collision-domain shards, each on its own worker thread (see
  /// sim/shard_engine.hpp). 0/1 = the serial engine. Any value produces
  /// bit-identical committed results; the BLAM_SHARDS environment variable
  /// overrides it at build time (the determinism CI leg diffs 1 vs 4).
  int shards{0};

  // --- Traffic ------------------------------------------------------------
  /// Sampling periods drawn uniformly from whole minutes in this range and
  /// fixed per node; all nodes boot at t = 0 (synchronized deployment).
  Time min_period{Time::from_minutes(16)};
  Time max_period{Time::from_minutes(60)};
  Time forecast_window{Time::from_minutes(1)};
  int payload_bytes{10};
  /// Per-period start jitter as a fraction of the period (uniform +/-).
  /// 0 keeps the paper's strictly periodic sampling.
  double period_jitter{0.0};
  /// Confirmed uplinks (ACK + retransmissions, the paper's mode). With
  /// false, packets are fire-and-forget: no RX windows, no retransmissions,
  /// no downlink — and no w_u dissemination, so the proposed MAC degrades
  /// to its theta cap.
  bool confirmed{true};

  // --- Protocol -----------------------------------------------------------
  PolicyKind policy{PolicyKind::kLorawan};
  /// Charging cap theta (H-5/H-50/H-100 = 0.05/0.5/1.0).
  double theta{1.0};
  /// Degradation-vs-utility weight w_b.
  double w_b{1.0};
  UtilityKind utility{UtilityKind::kLinear};
  double utility_lambda{3.0};
  double step_deadline{0.3};
  double step_floor{0.1};
  /// EWMA weight for the TX-energy estimate (paper Eq. 13 beta).
  double ewma_beta{0.3};
  /// Closed-loop network-manager theta (extension): the server adapts each
  /// node's cap from inferred loss, piggybacked on ACKs. Applies to the
  /// capped policies (blam / theta_only).
  bool adaptive_theta{false};
  ThetaController::Config theta_controller{};

  // --- Radio --------------------------------------------------------------
  int uplink_channels{8};
  int downlink_channels{8};
  double tx_power_dbm{14.0};
  int gateway_demod_paths{8};
  SfAssignment sf_assignment{SfAssignment::kFixed};
  SpreadingFactor fixed_sf{SpreadingFactor::kSF10};
  double sf_margin_db{0.0};
  double downlink_tx_dbm{27.0};
  /// RX1 downlink bandwidth. 125 kHz (EU-style, long ACKs) stresses the
  /// half-duplex gateway the way large confirmed-traffic deployments do.
  double rx1_bandwidth_hz{125e3};
  PathLossModel path_loss{};
  /// Foreign (uncoordinated) LoRa traffic sharing the band.
  InterfererConfig interference{};
  /// Rayleigh block fading: each transmission at each gateway gets an
  /// independent power fade on top of the frozen shadowing. Off by default
  /// (the NS-3 scenario the paper uses has no fast fading either).
  bool fast_fading{false};
  ClassATimings timings{};
  RadioEnergyModel radio{};
  /// Random retransmission backoff after the RX2 window closes.
  Time retx_backoff_min{Time::from_seconds(1.0)};
  Time retx_backoff_max{Time::from_seconds(3.0)};
  /// Regulatory duty cycle (ETSI T_off rule); 1.0 disables (US-915 has
  /// dwell-time limits instead of a duty cycle).
  double duty_cycle{1.0};
  /// Server-side Adaptive Data Rate: piggybacks SF / TX-power adjustments
  /// on ACKs. Off by default (the paper's evaluation fixes parameters).
  bool adr_enabled{false};
  AdrController::Config adr{};

  // --- Energy -------------------------------------------------------------
  /// Battery capacity = battery_days * estimated nominal daily demand. The
  /// paper requires "24 hours of operation without recharging"; the nominal
  /// estimate assumes one transmission per packet, so a generous factor
  /// leaves headroom for retransmissions and overcast days — under it the
  /// baseline LoRaWAN battery idles near full SoC, the premise of the
  /// paper's calendar-aging argument.
  double battery_days{8.0};
  /// Initial SoC as a fraction (clamped by theta).
  double initial_soc{0.5};
  /// Battery self-discharge per month (fraction of stored energy); Li-ion
  /// is ~1-3%/month.
  double battery_self_discharge_per_month{0.0};
  /// Solar peak sized so one forecast window at peak harvests this many
  /// worst-case transmissions. The paper scales its trace so "peak power
  /// supports two transmissions"; our default is more generous so that the
  /// baseline's battery stays near full SoC (the paper's premise) even
  /// through overcast winter days, with the window-selection benefit intact.
  double solar_tx_per_window{3.0};
  SolarTraceConfig solar{};
  /// If true, use solar.peak as-is instead of the sizing rule above.
  bool solar_peak_explicit{false};
  double panel_scale_min{0.8};
  double panel_scale_max{1.2};
  /// Per-period cloud jitter spread (harvest multiplied by U[1-s, 1]).
  double cloud_jitter_spread{0.3};
  double forecast_error_sigma{0.0};
  /// Hybrid storage (the paper's future-work extension): a supercapacitor
  /// sized to hold this many worst-case transmissions sits in front of the
  /// battery; 0 disables it.
  double supercap_tx_buffer{0.0};
  double supercap_efficiency{0.95};
  double supercap_leak_per_day{0.2};

  // --- Degradation --------------------------------------------------------
  DegradationParams degradation{};
  /// Battery temperature used for the gateway's degradation service and as
  /// the fixed temperature when thermal.insulated (the paper's setting).
  double temperature_c{25.0};
  /// Outdoor-temperature extension; insulated by default.
  ThermalConfig thermal{};
  /// How often the gateway recomputes and disseminates w_u.
  Time dissemination_period{Time::from_days(1.0)};

  // --- Faults & graceful degradation ---------------------------------------
  /// Fault-injection plan (gateway outages, ACK-loss bursts, node crashes,
  /// harvest droughts). All-defaults means no faults: the Network then
  /// builds no FaultPlan and results are bit-identical to a build that
  /// predates the fault subsystem.
  FaultPlanConfig faults{};
  /// Staleness-aware w_u fallback: when the last gateway feedback is older
  /// than this many dissemination periods, BLAM decays its w_u toward the
  /// conservative (high-DIF-weight) regime over the same span instead of
  /// trusting the stale value. 0 disables (the paper's behavior).
  double stale_feedback_k{0.0};
  /// Bounded exponential backoff across consecutive ACK-less packets: after
  /// n straight packets end with no ACK, the next packet's transmission
  /// budget is max_transmissions >> min(n, 3) (floor 1), so a node facing a
  /// dead gateway probes once per period instead of hammering the full
  /// retransmission ladder into it. Off by default.
  bool ack_failure_backoff{false};

  // --- Diagnostics ---------------------------------------------------------
  /// Records every packet lifecycle event (memory-heavy; short runs only).
  bool packet_log{false};
  /// Runtime invariant auditor (level 0 = off). The BLAM_AUDIT and
  /// BLAM_AUDIT_THROW environment variables override this at Network build
  /// time; see audit/audit.hpp.
  AuditConfig audit{};
  /// Degradation-ledger ingestion-queue watermark: piggy-backed SoC reports
  /// are staged and processed in batches of this size (1 = drain on every
  /// report, the legacy synchronous path). Any value yields bit-identical
  /// results — drain order is arrival order — so this is purely a
  /// throughput/locality knob. The BLAM_INGEST_BATCH environment variable
  /// overrides it at Network build time (the determinism CI leg uses that
  /// to diff batch 1 vs 4096 outputs).
  std::size_t ingest_batch{1};

  /// Number of forecast windows for a given sampling period.
  [[nodiscard]] int windows_for(Time period) const {
    return std::max<int>(1, static_cast<int>(period / forecast_window));
  }

  /// Human-readable protocol label (LoRaWAN / H-50 / H-50C ...).
  [[nodiscard]] std::string policy_label() const;

  /// Validates invariants; throws std::invalid_argument with a message
  /// naming the offending field.
  void validate() const;
};

/// Policy factory (one policy instance per node).
[[nodiscard]] std::unique_ptr<MacPolicy> make_policy(const ScenarioConfig& config);

/// Utility factory (shared across nodes; stateless).
[[nodiscard]] std::unique_ptr<UtilityFunction> make_utility(const ScenarioConfig& config);

/// Convenience constructors for the paper's named configurations.
[[nodiscard]] ScenarioConfig lorawan_scenario(int n_nodes, std::uint64_t seed);
[[nodiscard]] ScenarioConfig blam_scenario(int n_nodes, double theta, std::uint64_t seed);
[[nodiscard]] ScenarioConfig theta_only_scenario(int n_nodes, double theta, std::uint64_t seed);
[[nodiscard]] ScenarioConfig greedy_green_scenario(int n_nodes, std::uint64_t seed);

}  // namespace blam
