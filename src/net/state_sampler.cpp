#include "net/state_sampler.hpp"

#include <algorithm>

#include "common/csv.hpp"
#include "net/network.hpp"

namespace blam {

StateSampler::StateSampler(const Network& network) : network_{&network} {}

void StateSampler::sample() {
  Snapshot snap;
  snap.at = network_->simulator().now();
  const auto& nodes = network_->nodes();
  snap.soc.reserve(nodes.size());
  snap.degradation.reserve(nodes.size());
  snap.calendar_linear.reserve(nodes.size());
  snap.cycle_linear.reserve(nodes.size());
  for (const auto& node : nodes) {
    snap.soc.push_back(node->battery().soc());
    snap.degradation.push_back(node->tracker().degradation(snap.at));
    snap.calendar_linear.push_back(node->tracker().calendar_linear(snap.at));
    snap.cycle_linear.push_back(node->tracker().cycle_linear());
  }
  snapshots_.push_back(std::move(snap));
}

double StateSampler::Snapshot::max_degradation() const {
  if (degradation.empty()) return 0.0;
  return *std::max_element(degradation.begin(), degradation.end());
}

double StateSampler::Snapshot::mean_soc() const {
  if (soc.empty()) return 0.0;
  double sum = 0.0;
  for (double s : soc) sum += s;
  return sum / static_cast<double>(soc.size());
}

void StateSampler::write_csv(const std::string& path) const {
  CsvWriter csv{path, {"time_days", "node", "soc", "degradation", "calendar_linear",
                       "cycle_linear"}};
  for (const Snapshot& snap : snapshots_) {
    for (std::size_t i = 0; i < snap.soc.size(); ++i) {
      csv.row({CsvWriter::cell(snap.at.days()), CsvWriter::cell(static_cast<std::uint64_t>(i)),
               CsvWriter::cell(snap.soc[i]), CsvWriter::cell(snap.degradation[i]),
               CsvWriter::cell(snap.calendar_linear[i]), CsvWriter::cell(snap.cycle_linear[i])});
    }
  }
  csv.flush();
}

}  // namespace blam
