#include "fault/report_channel.hpp"

#include <bit>
#include <utility>

namespace blam {

ReportFaultChannel::Lane& ReportFaultChannel::lane(std::uint32_t node_id) {
  auto it = lanes_.find(node_id);
  if (it == lanes_.end()) {
    // The lane's stream depends only on the node id, so traffic order cannot
    // change which faults a node's reports experience.
    it = lanes_.emplace(node_id, Lane{plan_->report_stream(node_id), false, 0, 0, {}}).first;
  }
  return it->second;
}

void ReportFaultChannel::deliver(std::uint32_t node_id, std::uint16_t report_seq,
                                 std::uint8_t report_crc, std::span<const SocSample> samples,
                                 const Sink& sink) {
  if (!plan_->config().reports_enabled()) {
    ++counters_.delivered;
    sink(node_id, report_seq, report_crc, samples);
    return;
  }
  const FaultPlanConfig& cfg = plan_->config();
  Lane& ln = lane(node_id);
  // One draw per report, cumulative thresholds: at most one fault fires.
  const double draw = ln.rng.uniform();
  double threshold = cfg.report_loss;
  bool held_this_report = false;

  if (draw < threshold) {
    ++counters_.dropped;
  } else if (draw < (threshold += cfg.report_dup)) {
    ++counters_.duplicated;
    ++counters_.delivered;
    sink(node_id, report_seq, report_crc, samples);
    sink(node_id, report_seq, report_crc, samples);
  } else if (draw < (threshold += cfg.report_reorder)) {
    if (ln.holding) {
      // Slot occupied: the report passes through unswapped (the held one is
      // released below, which still realizes the earlier reorder).
      ++counters_.delivered;
      sink(node_id, report_seq, report_crc, samples);
    } else {
      ++counters_.reordered;
      ln.holding = true;
      ln.held_seq = report_seq;
      ln.held_crc = report_crc;
      ln.held_samples.assign(samples.begin(), samples.end());
      held_this_report = true;
    }
  } else if (draw < (threshold += cfg.report_corrupt)) {
    ++counters_.corrupted;
    ++counters_.delivered;
    // Flip one bit somewhere in the report image — a sample's SoC bit
    // pattern, a timestamp, or the sequence number — and keep the stale CRC:
    // exactly what a bit error between radio and ledger looks like. (A real
    // CRC-8 misses ~1/256 of multi-bit bursts; a single flipped bit is
    // always caught, so the detection the bench measures is the guaranteed
    // case.)
    std::uint16_t seq = report_seq;
    std::vector<SocSample> mutated{samples.begin(), samples.end()};
    const std::int64_t fields = static_cast<std::int64_t>(2 * mutated.size());
    const std::int64_t field = ln.rng.uniform_int(0, fields);  // `fields` = the seq itself
    if (field == fields || mutated.empty()) {
      seq ^= static_cast<std::uint16_t>(1u << ln.rng.uniform_int(0, 15));
    } else if (field % 2 == 0) {
      SocSample& victim = mutated[static_cast<std::size_t>(field / 2)];
      victim.soc = std::bit_cast<double>(std::bit_cast<std::uint64_t>(victim.soc) ^
                                         (1ull << ln.rng.uniform_int(0, 63)));
    } else {
      SocSample& victim = mutated[static_cast<std::size_t>(field / 2)];
      victim.t = Time::from_us(victim.t.us() ^
                               static_cast<std::int64_t>(1ull << ln.rng.uniform_int(0, 62)));
    }
    sink(node_id, seq, report_crc, mutated);
  } else if (draw < threshold + cfg.report_truncate) {
    ++counters_.truncated;
    ++counters_.delivered;
    // Lose the trailing sample, keep the CRC computed over the full report:
    // the ledger's checksum check rejects it.
    std::vector<SocSample> shortened{samples.begin(), samples.end()};
    if (!shortened.empty()) shortened.pop_back();
    sink(node_id, report_seq, report_crc, shortened);
  } else {
    ++counters_.delivered;
    sink(node_id, report_seq, report_crc, samples);
  }

  if (ln.holding && !held_this_report) {
    // Release the held report AFTER the current one: B then A on the wire.
    ln.holding = false;
    const std::vector<SocSample> late = std::move(ln.held_samples);
    ln.held_samples.clear();
    ++counters_.delivered;
    sink(node_id, ln.held_seq, ln.held_crc, late);
  }
}

std::vector<ReportFaultChannel::LaneSnapshot> ReportFaultChannel::snapshot() const {
  std::vector<LaneSnapshot> out;
  out.reserve(lanes_.size());
  for (const auto& [node_id, ln] : lanes_) {
    out.push_back(
        LaneSnapshot{node_id, ln.rng.state(), ln.holding, ln.held_seq, ln.held_crc,
                     ln.held_samples});
  }
  return out;
}

void ReportFaultChannel::restore(const std::vector<LaneSnapshot>& lanes,
                                 const ReportChannelCounters& counters) {
  lanes_.clear();
  for (const LaneSnapshot& snap : lanes) {
    Lane& ln = lane(snap.node_id);  // seeds the rng from the plan's fork
    ln.rng.restore(snap.rng);
    ln.holding = snap.holding;
    ln.held_seq = snap.held_seq;
    ln.held_crc = snap.held_crc;
    ln.held_samples = snap.held_samples;
  }
  counters_ = counters;
}

void ReportFaultChannel::flush(const Sink& sink) {
  for (auto& [node_id, ln] : lanes_) {
    if (!ln.holding) continue;
    ln.holding = false;
    const std::vector<SocSample> late = std::move(ln.held_samples);
    ln.held_samples.clear();
    ++counters_.delivered;
    sink(node_id, ln.held_seq, ln.held_crc, late);
  }
}

}  // namespace blam
