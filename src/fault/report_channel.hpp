// Deterministic fault channel for piggy-backed SoC reports.
//
// Sits between PHY delivery and ledger ingestion on the gateway: every
// report that survives the radio passes through deliver(), which draws one
// uniform from the node's dedicated fault stream and either forwards the
// report intact or applies exactly one fault — drop, duplicate, reorder
// (held one slot and released after the node's next report), single-bit
// corruption of a sample or the sequence number (the stale CRC travels
// along, so the ledger's checksum check is what must catch it), or sample
// truncation. Streams are forked per node off the FaultPlan's report salt,
// so report faults never perturb any other fault source, and a plan with
// reports_enabled() false never constructs lanes or consumes draws —
// fault-free runs stay bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/degradation_service.hpp"
#include "fault/fault_plan.hpp"

namespace blam {

/// What the channel did to the reports it carried (observability; feeds
/// GatewayMetrics).
struct ReportChannelCounters {
  std::uint64_t delivered{0};
  std::uint64_t dropped{0};
  std::uint64_t duplicated{0};
  std::uint64_t reordered{0};
  std::uint64_t corrupted{0};
  std::uint64_t truncated{0};
};

class ReportFaultChannel {
 public:
  /// Receives each report the channel releases (possibly mutated); the
  /// network server points this at DegradationService::ingest_report.
  using Sink = std::function<void(std::uint32_t node_id, std::uint16_t report_seq,
                                  std::uint8_t report_crc, std::span<const SocSample> samples)>;

  explicit ReportFaultChannel(const FaultPlan& plan) : plan_{&plan} {}

  /// Carries one report across the faulty channel, invoking `sink` zero, one
  /// or two times depending on the fault drawn.
  void deliver(std::uint32_t node_id, std::uint16_t report_seq, std::uint8_t report_crc,
               std::span<const SocSample> samples, const Sink& sink);

  /// Releases any report still held for reordering (end of run); without
  /// this a held report would be silently lost rather than late.
  void flush(const Sink& sink);

  [[nodiscard]] const ReportChannelCounters& counters() const { return counters_; }

  /// Lane state for engine checkpoints (already sorted: lanes_ is an
  /// ordered map).
  struct LaneSnapshot {
    std::uint32_t node_id{0};
    Rng::State rng{};
    bool holding{false};
    std::uint16_t held_seq{0};
    std::uint8_t held_crc{0};
    std::vector<SocSample> held_samples;
  };

  [[nodiscard]] std::vector<LaneSnapshot> snapshot() const;
  void restore(const std::vector<LaneSnapshot>& lanes, const ReportChannelCounters& counters);

 private:
  struct Lane {
    Rng rng;
    /// One-slot reorder buffer: the held report is released after the next
    /// report from the same node goes through (B then A).
    bool holding{false};
    std::uint16_t held_seq{0};
    std::uint8_t held_crc{0};
    std::vector<SocSample> held_samples;
  };

  Lane& lane(std::uint32_t node_id);

  // blam-ckpt: skip -- wiring; lane RNGs and held reports are serialized through the server section
  const FaultPlan* plan_;
  // Ordered map: flush() iterates it, and flush order must not depend on
  // hash layout.
  std::map<std::uint32_t, Lane> lanes_;
  ReportChannelCounters counters_;
};

}  // namespace blam
