#include "fault/gilbert_elliott.hpp"

#include <stdexcept>

namespace blam {

GilbertElliott::GilbertElliott(const Params& params, Rng rng)
    : params_{params}, rng_{rng} {
  if (params.loss_good < 0.0 || params.loss_good > 1.0 || params.loss_bad < 0.0 ||
      params.loss_bad > 1.0) {
    throw std::invalid_argument{"GilbertElliott: loss probabilities must be in [0,1]"};
  }
  if (params.good_mean <= Time::zero() || params.bad_mean <= Time::zero()) {
    throw std::invalid_argument{"GilbertElliott: sojourn means must be positive"};
  }
  state_until_ = Time::from_seconds(rng_.exponential(params_.good_mean.seconds()));
}

void GilbertElliott::advance(Time now) {
  while (state_until_ <= now) {
    bad_ = !bad_;
    const Time mean = bad_ ? params_.bad_mean : params_.good_mean;
    state_until_ += Time::from_seconds(rng_.exponential(mean.seconds()));
  }
}

bool GilbertElliott::lost(Time now) {
  advance(now);
  return rng_.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

double GilbertElliott::bad_fraction() const {
  const double g = params_.good_mean.seconds();
  const double b = params_.bad_mean.seconds();
  return b / (g + b);
}

}  // namespace blam
