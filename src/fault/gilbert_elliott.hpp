// Gilbert-Elliott two-state burst-loss channel, continuous-time variant.
//
// The classic Gilbert-Elliott model alternates between a GOOD and a BAD
// state with geometric sojourns and a per-packet loss probability in each
// state. Downlink ACKs are sparse (one per delivered uplink), so a
// per-packet chain would make burst lengths depend on traffic intensity;
// instead the chain lives in continuous time with exponentially distributed
// sojourn durations, and each query advances the state to the query
// timestamp before drawing the loss Bernoulli. Queries must be
// non-decreasing in time (the simulator processes events in order).
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace blam {

class GilbertElliott {
 public:
  struct Params {
    /// Per-packet loss probability while in the good / bad state.
    double loss_good{0.0};
    double loss_bad{1.0};
    /// Mean sojourn duration of each state (exponentially distributed).
    Time good_mean{Time::from_minutes(30.0)};
    Time bad_mean{Time::from_minutes(2.0)};
  };

  /// The chain starts in the good state at t = 0; `rng` must be a dedicated
  /// stream (the chain consumes draws for sojourns and loss decisions).
  GilbertElliott(const Params& params, Rng rng);

  /// Advances the chain to `now` and draws whether a packet sent at `now`
  /// is lost.
  [[nodiscard]] bool lost(Time now);

  /// State after the most recent query (diagnostics).
  [[nodiscard]] bool in_bad_state() const { return bad_; }

  /// Long-run fraction of time spent in the bad state.
  [[nodiscard]] double bad_fraction() const;

  /// Chain state for engine checkpoints (params are rebuilt from config).
  struct State {
    Rng::State rng{};
    bool bad{false};
    Time state_until{};
  };

  [[nodiscard]] State state() const { return State{rng_.state(), bad_, state_until_}; }

  void restore(const State& state) {
    rng_.restore(state.rng);
    bad_ = state.bad;
    state_until_ = state.state_until;
  }

 private:
  void advance(Time now);

  Params params_;
  Rng rng_;
  bool bad_{false};
  /// The current sojourn ends at this instant.
  Time state_until_{};
};

}  // namespace blam
