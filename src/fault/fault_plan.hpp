// Deterministic fault-injection plan (gateway outages, downlink ACK-loss
// bursts, node crash/reboot events, solar harvest droughts).
//
// A FaultPlan is built once per Network from the scenario's fault config and
// a dedicated Rng stream forked off the scenario seed. Every fault source
// draws from its own child stream (Rng::fork with a source-specific salt),
// so enabling one fault never perturbs the draws of another — and enabling
// faults at all never perturbs the channel/traffic/topology streams, which
// keeps fault-free results bit-identical to a scenario without a plan.
//
// Gateway outages are materialized lazily as a merged, sorted interval list
// (fixed daily windows plus a Poisson process of random outages) extended on
// demand as the simulation clock advances; every query is a binary search.
// The downlink ACK-loss channel is a continuous-time Gilbert-Elliott chain
// per gateway. Crash times are exposed as per-node Rng streams the node
// samples between reboots. The drought scales harvested energy over one
// configured interval; Node splits its harvest integrals at the drought
// boundaries so the accounting stays exact.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "energy/solar.hpp"
#include "fault/gilbert_elliott.hpp"

namespace blam {

struct FaultPlanConfig {
  // --- (a) gateway outage windows ----------------------------------------
  /// Fixed daily outage: the gateway is dead during
  /// [k*day + daily_start, k*day + daily_start + daily_duration) for every
  /// day k. Zero duration disables.
  Time outage_daily_start{Time::zero()};
  Time outage_daily_duration{Time::zero()};
  /// Random outages: Poisson arrivals at this expected rate per day, each
  /// lasting Uniform[outage_random_min, outage_random_max]. Zero disables.
  double outage_random_per_day{0.0};
  Time outage_random_min{Time::from_minutes(15.0)};
  Time outage_random_max{Time::from_hours(2.0)};

  // --- (b) downlink ACK-loss bursts (Gilbert-Elliott) --------------------
  /// Per-ACK loss probability in the good / bad channel state. Both zero
  /// disables the channel entirely (no chain is created, no draws consumed).
  double ack_loss_good{0.0};
  double ack_loss_bad{0.0};
  /// Mean sojourn in each state (exponential).
  Time ack_good_mean{Time::from_hours(4.0)};
  Time ack_bad_mean{Time::from_minutes(10.0)};

  // --- (c) node crash / reboot -------------------------------------------
  /// Expected crashes per node per year (Poisson). A crash wipes the node's
  /// volatile estimator state (EWMA, retransmission histogram, w_u) and the
  /// node stays dark for reboot_duration. Zero disables.
  double crash_per_year{0.0};
  Time reboot_duration{Time::from_minutes(10.0)};

  // --- (e) SoC-report channel faults -------------------------------------
  /// Per-report probabilities of the feedback-pipe faults applied to each
  /// piggy-backed SoC report between PHY delivery and ledger ingestion:
  /// drop, duplicate delivery, reorder (swapped with the node's next
  /// report), single-bit corruption and sample truncation. Mutually
  /// exclusive per report (at most one fault fires); their sum must be
  /// <= 1. All zero disables the channel (no streams forked, no draws).
  double report_loss{0.0};
  double report_dup{0.0};
  double report_reorder{0.0};
  double report_corrupt{0.0};
  double report_truncate{0.0};

  // --- (d) solar harvest drought -----------------------------------------
  /// Harvested energy is multiplied by drought_scale inside
  /// [drought_start, drought_start + drought_duration). Zero duration or a
  /// scale of 1 disables.
  Time drought_start{Time::zero()};
  Time drought_duration{Time::zero()};
  double drought_scale{1.0};

  /// True when at least one fault source is active; the Network only builds
  /// a FaultPlan (and forks its Rng streams) in that case.
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool outages_enabled() const;
  [[nodiscard]] bool ack_loss_enabled() const;
  [[nodiscard]] bool crashes_enabled() const;
  [[nodiscard]] bool drought_enabled() const;
  [[nodiscard]] bool reports_enabled() const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class FaultPlan {
 public:
  /// `base` must be a stream dedicated to fault injection (the Network
  /// forks it off the scenario root with a fault-specific salt).
  FaultPlan(const FaultPlanConfig& config, Rng base);

  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }

  // --- gateway outages ----------------------------------------------------
  /// True when the gateway backhaul is down at `t`.
  [[nodiscard]] bool gateway_out(Time t) const;

  /// Total outage duration within [0, t].
  [[nodiscard]] Time outage_seconds_until(Time t) const;

  /// End of the most recent outage that completed at or before `t`;
  /// Time::zero() when no outage has completed yet.
  [[nodiscard]] Time last_outage_end_before(Time t) const;

  // --- downlink ACK loss --------------------------------------------------
  /// Whether the ACK a gateway transmits at `t` is lost to the burst
  /// channel. Each gateway id owns an independent chain.
  [[nodiscard]] bool downlink_lost(int gateway_id, Time t);

  // --- node crashes ---------------------------------------------------------
  /// Independent per-node stream for crash inter-arrival draws.
  [[nodiscard]] Rng crash_stream(std::uint32_t node_id) const;

  // --- SoC-report channel -----------------------------------------------
  /// Independent per-node stream for report-fault draws (consumed by the
  /// ReportFaultChannel lane for that node).
  [[nodiscard]] Rng report_stream(std::uint32_t node_id) const;

  // --- harvest drought ------------------------------------------------------
  /// Instantaneous harvest scale factor at `t` (1 outside the drought).
  [[nodiscard]] double drought_scale_at(Time t) const;

  /// Time-weighted average scale over [t0, t1] (forecast adjustment).
  [[nodiscard]] double drought_factor(Time t0, Time t1) const;

  /// Exact harvested energy over [t0, t1] with the drought applied: the
  /// integral splits at the drought boundaries, each piece scaled.
  [[nodiscard]] Energy scaled_harvest(const Harvester& harvester, Time t0, Time t1) const;

  // --- engine checkpoints ---------------------------------------------------
  /// The plan's only state that cannot be regenerated from (config, seed)
  /// on demand: the lazily-created per-gateway downlink burst chains, which
  /// advance with every ACK query. The outage schedule is deliberately NOT
  /// part of this — it is a pure function of (config, seed) and
  /// rematerializes identically on the restored plan's first query.
  [[nodiscard]] std::vector<std::pair<int, GilbertElliott::State>> channel_states() const;

  /// Rebuilds the chain map from checkpointed states: each chain is
  /// re-forked exactly as downlink_lost() would create it, then fast-
  /// forwarded to its captured state.
  void restore_channel_states(const std::vector<std::pair<int, GilbertElliott::State>>& states);

 private:
  struct Interval {
    Time start;
    Time end;
  };

  /// Extends the merged outage-interval list to cover at least `t`.
  void ensure_outages(Time t) const;
  void rebuild_prefix() const;

  // blam-ckpt: skip -- construction input; the plan is rebuilt from the same ScenarioConfig::faults
  FaultPlanConfig config_;
  Rng base_;

  // Lazily materialized outage schedule (mutable: queries are logically
  // const, the schedule is deterministic in (config, seed) alone).
  // blam-ckpt: skip -- lazily materialized schedule state, deterministic in (config, seed) alone
  mutable Rng outage_rng_;
  // blam-ckpt: skip -- lazily materialized schedule, deterministic in (config, seed) alone
  mutable std::vector<Interval> outages_;       // merged, sorted
  // blam-ckpt: skip -- derived from outages_, rebuilt by rebuild_prefix()
  mutable std::vector<double> outage_prefix_s_; // cumulative seconds up to outages_[i].end
  // blam-ckpt: skip -- lazily materialized schedule cursor, deterministic in (config, seed) alone
  mutable Time outage_horizon_{Time::zero()};
  // blam-ckpt: skip -- lazily materialized schedule cursor, deterministic in (config, seed) alone
  mutable Time next_random_start_{Time::zero()};
  // blam-ckpt: skip -- lazily materialized schedule cursor, deterministic in (config, seed) alone
  mutable std::int64_t next_daily_day_{0};
  // blam-ckpt: skip -- lazily materialized schedule latch, deterministic in (config, seed) alone
  mutable bool random_seeded_{false};

  std::map<int, GilbertElliott> ack_channels_;  // per gateway id
};

}  // namespace blam
