#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace blam {

bool FaultPlanConfig::outages_enabled() const {
  return outage_daily_duration > Time::zero() || outage_random_per_day > 0.0;
}

bool FaultPlanConfig::ack_loss_enabled() const {
  return ack_loss_good > 0.0 || ack_loss_bad > 0.0;
}

bool FaultPlanConfig::crashes_enabled() const { return crash_per_year > 0.0; }

bool FaultPlanConfig::drought_enabled() const {
  return drought_duration > Time::zero() && drought_scale != 1.0;
}

bool FaultPlanConfig::reports_enabled() const {
  return report_loss > 0.0 || report_dup > 0.0 || report_reorder > 0.0 || report_corrupt > 0.0 ||
         report_truncate > 0.0;
}

bool FaultPlanConfig::any() const {
  return outages_enabled() || ack_loss_enabled() || crashes_enabled() || drought_enabled() ||
         reports_enabled();
}

void FaultPlanConfig::validate() const {
  if (outage_daily_start < Time::zero() || outage_daily_start >= Time::from_days(1.0)) {
    throw std::invalid_argument{"FaultPlanConfig: outage_daily_start in [0, 1 day)"};
  }
  if (outage_daily_duration < Time::zero() || outage_daily_duration > Time::from_days(1.0)) {
    throw std::invalid_argument{"FaultPlanConfig: outage_daily_duration in [0, 1 day]"};
  }
  if (outage_random_per_day < 0.0) {
    throw std::invalid_argument{"FaultPlanConfig: outage_random_per_day must be >= 0"};
  }
  if (outage_random_per_day > 0.0 &&
      (outage_random_min <= Time::zero() || outage_random_min > outage_random_max)) {
    throw std::invalid_argument{"FaultPlanConfig: invalid random outage duration range"};
  }
  if (ack_loss_good < 0.0 || ack_loss_good > 1.0 || ack_loss_bad < 0.0 || ack_loss_bad > 1.0) {
    throw std::invalid_argument{"FaultPlanConfig: ack loss probabilities in [0,1]"};
  }
  if (ack_loss_enabled() && (ack_good_mean <= Time::zero() || ack_bad_mean <= Time::zero())) {
    throw std::invalid_argument{"FaultPlanConfig: ack channel sojourn means must be positive"};
  }
  if (crash_per_year < 0.0) {
    throw std::invalid_argument{"FaultPlanConfig: crash_per_year must be >= 0"};
  }
  if (crashes_enabled() && reboot_duration <= Time::zero()) {
    throw std::invalid_argument{"FaultPlanConfig: reboot_duration must be positive"};
  }
  if (drought_start < Time::zero() || drought_duration < Time::zero()) {
    throw std::invalid_argument{"FaultPlanConfig: drought interval must be non-negative"};
  }
  if (drought_scale < 0.0 || drought_scale > 1.0) {
    throw std::invalid_argument{"FaultPlanConfig: drought_scale in [0,1]"};
  }
  const double report_probs[] = {report_loss, report_dup, report_reorder, report_corrupt,
                                 report_truncate};
  double report_sum = 0.0;
  for (const double p : report_probs) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument{"FaultPlanConfig: report fault probabilities in [0,1]"};
    }
    report_sum += p;
  }
  if (report_sum > 1.0) {
    throw std::invalid_argument{
        "FaultPlanConfig: report fault probabilities must sum to at most 1"};
  }
}

FaultPlan::FaultPlan(const FaultPlanConfig& config, Rng base)
    : config_{config}, base_{base}, outage_rng_{base.fork(salt::kOutage)} {
  config_.validate();
}

void FaultPlan::rebuild_prefix() const {
  outage_prefix_s_.resize(outages_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < outages_.size(); ++i) {
    sum += (outages_[i].end - outages_[i].start).seconds();
    outage_prefix_s_[i] = sum;
  }
}

void FaultPlan::ensure_outages(Time t) const {
  if (!config_.outages_enabled()) return;
  if (t < outage_horizon_) return;
  // Extend generously so extensions stay rare; random outages that start
  // before the horizon may end past it, so keep a day of slack beyond the
  // longest possible outage.
  const Time target = t + Time::from_days(30.0);

  std::vector<Interval> fresh;
  if (config_.outage_daily_duration > Time::zero()) {
    const Time day = Time::from_days(1.0);
    while (day * next_daily_day_ + config_.outage_daily_start < target) {
      const Time start = day * next_daily_day_ + config_.outage_daily_start;
      fresh.push_back({start, start + config_.outage_daily_duration});
      ++next_daily_day_;
    }
  }
  if (config_.outage_random_per_day > 0.0) {
    const double mean_gap_s = 86400.0 / config_.outage_random_per_day;
    if (!random_seeded_) {
      next_random_start_ = Time::from_seconds(outage_rng_.exponential(mean_gap_s));
      random_seeded_ = true;
    }
    while (next_random_start_ < target) {
      const Time duration = Time::from_us(outage_rng_.uniform_int(
          config_.outage_random_min.us(), config_.outage_random_max.us()));
      fresh.push_back({next_random_start_, next_random_start_ + duration});
      next_random_start_ += Time::from_seconds(outage_rng_.exponential(mean_gap_s));
    }
  }
  outage_horizon_ = target;
  if (fresh.empty()) return;

  outages_.insert(outages_.end(), fresh.begin(), fresh.end());
  std::sort(outages_.begin(), outages_.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> merged;
  merged.reserve(outages_.size());
  for (const Interval& iv : outages_) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  outages_ = std::move(merged);
  rebuild_prefix();
}

bool FaultPlan::gateway_out(Time t) const {
  if (!config_.outages_enabled()) return false;
  ensure_outages(t);
  // First interval with start > t; the candidate is the one before it.
  const auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](Time value, const Interval& iv) { return value < iv.start; });
  if (it == outages_.begin()) return false;
  return t < std::prev(it)->end;
}

Time FaultPlan::outage_seconds_until(Time t) const {
  if (!config_.outages_enabled()) return Time::zero();
  ensure_outages(t);
  const auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](Time value, const Interval& iv) { return value < iv.start; });
  if (it == outages_.begin()) return Time::zero();
  const std::size_t idx = static_cast<std::size_t>(it - outages_.begin()) - 1;
  double seconds = outage_prefix_s_[idx];
  if (t < outages_[idx].end) seconds -= (outages_[idx].end - t).seconds();
  return Time::from_seconds(seconds);
}

Time FaultPlan::last_outage_end_before(Time t) const {
  if (!config_.outages_enabled()) return Time::zero();
  ensure_outages(t);
  Time best = Time::zero();
  for (auto it = outages_.rbegin(); it != outages_.rend(); ++it) {
    if (it->end <= t) {
      best = it->end;
      break;
    }
  }
  return best;
}

bool FaultPlan::downlink_lost(int gateway_id, Time t) {
  if (!config_.ack_loss_enabled()) return false;
  auto it = ack_channels_.find(gateway_id);
  if (it == ack_channels_.end()) {
    GilbertElliott::Params params;
    params.loss_good = config_.ack_loss_good;
    params.loss_bad = config_.ack_loss_bad;
    params.good_mean = config_.ack_good_mean;
    params.bad_mean = config_.ack_bad_mean;
    // The chain's stream depends only on the gateway id, so creation order
    // (and therefore traffic order) cannot change its realization.
    it = ack_channels_
             .emplace(gateway_id,
                      GilbertElliott{params, base_.fork(salt::kAckChannel +
                                                        static_cast<std::uint64_t>(gateway_id))})
             .first;
  }
  return it->second.lost(t);
}

std::vector<std::pair<int, GilbertElliott::State>> FaultPlan::channel_states() const {
  std::vector<std::pair<int, GilbertElliott::State>> out;
  out.reserve(ack_channels_.size());
  for (const auto& [gateway_id, chain] : ack_channels_) {
    out.emplace_back(gateway_id, chain.state());
  }
  return out;
}

void FaultPlan::restore_channel_states(
    const std::vector<std::pair<int, GilbertElliott::State>>& states) {
  ack_channels_.clear();
  GilbertElliott::Params params;
  params.loss_good = config_.ack_loss_good;
  params.loss_bad = config_.ack_loss_bad;
  params.good_mean = config_.ack_good_mean;
  params.bad_mean = config_.ack_bad_mean;
  for (const auto& [gateway_id, state] : states) {
    auto it = ack_channels_
                  .emplace(gateway_id,
                           GilbertElliott{params, base_.fork(salt::kAckChannel +
                                                             static_cast<std::uint64_t>(
                                                                 gateway_id))})
                  .first;
    it->second.restore(state);
  }
}

Rng FaultPlan::crash_stream(std::uint32_t node_id) const {
  return base_.fork(salt::kCrash + (static_cast<std::uint64_t>(node_id) << 16));
}

Rng FaultPlan::report_stream(std::uint32_t node_id) const {
  return base_.fork(salt::kReportPipe + (static_cast<std::uint64_t>(node_id) << 16));
}

double FaultPlan::drought_scale_at(Time t) const {
  if (!config_.drought_enabled()) return 1.0;
  const Time end = config_.drought_start + config_.drought_duration;
  return (t >= config_.drought_start && t < end) ? config_.drought_scale : 1.0;
}

double FaultPlan::drought_factor(Time t0, Time t1) const {
  if (!config_.drought_enabled() || t1 <= t0) return drought_scale_at(t0);
  const Time start = std::max(t0, config_.drought_start);
  const Time end = std::min(t1, config_.drought_start + config_.drought_duration);
  if (end <= start) return 1.0;
  const double in_drought = (end - start).seconds();
  const double total = (t1 - t0).seconds();
  const double fraction = in_drought / total;
  return 1.0 - fraction * (1.0 - config_.drought_scale);
}

Energy FaultPlan::scaled_harvest(const Harvester& harvester, Time t0, Time t1) const {
  if (!config_.drought_enabled() || t1 <= t0) return harvester.energy_between(t0, t1);
  const Time ds = config_.drought_start;
  const Time de = config_.drought_start + config_.drought_duration;
  Energy total = Energy::zero();
  const Time a = std::min(std::max(ds, t0), t1);  // drought entry clamped to [t0,t1]
  const Time b = std::min(std::max(de, t0), t1);  // drought exit clamped to [t0,t1]
  if (a > t0) total += harvester.energy_between(t0, a);
  if (b > a) total += harvester.energy_between(a, b) * config_.drought_scale;
  if (t1 > b) total += harvester.energy_between(b, t1);
  return total;
}

}  // namespace blam
