#include "energy/thermal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace blam {

TemperatureModel::TemperatureModel(const ThermalConfig& config) : config_{config} {
  if (config.seasonal_amplitude_c < 0.0 || config.diurnal_amplitude_c < 0.0) {
    throw std::invalid_argument{"TemperatureModel: amplitudes must be non-negative"};
  }
}

double TemperatureModel::at(Time t) const {
  if (config_.insulated) return config_.fixed_c;
  const double day = t.days();
  // Coldest day of the year: day 15 (mid-January); warmest: day ~197.
  const double seasonal =
      -config_.seasonal_amplitude_c * std::cos(2.0 * std::numbers::pi * (day - 15.0) / 365.0);
  // Coldest hour: 4 am; warmest: 4 pm.
  const double hour = (day - std::floor(day)) * 24.0;
  const double diurnal =
      -config_.diurnal_amplitude_c * std::cos(2.0 * std::numbers::pi * (hour - 4.0) / 24.0);
  return config_.mean_c + seasonal + diurnal;
}

}  // namespace blam
