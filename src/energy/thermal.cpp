#include "energy/thermal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace blam {

TemperatureModel::TemperatureModel(const ThermalConfig& config) : config_{config} {
  if (config.seasonal_amplitude_c < 0.0 || config.diurnal_amplitude_c < 0.0) {
    throw std::invalid_argument{"TemperatureModel: amplitudes must be non-negative"};
  }
  if (config.seasonal_trough < Time::zero() || config.seasonal_trough >= Time::from_days(365.0)) {
    throw std::invalid_argument{"TemperatureModel: seasonal_trough must lie in [0, 365 d)"};
  }
  if (config.diurnal_trough < Time::zero() || config.diurnal_trough >= Time::from_hours(24.0)) {
    throw std::invalid_argument{"TemperatureModel: diurnal_trough must lie in [0, 24 h)"};
  }
}

double TemperatureModel::at(Time t) const {
  if (config_.insulated) return config_.fixed_c;
  const double day = t.days();
  // Coldest day of the year at seasonal_trough (default: day 15,
  // mid-January); warmest half a year later. The arithmetic below mirrors
  // the historical raw-double form exactly: the Time troughs convert to
  // whole days/hours losslessly, so default-config traces are bit-identical
  // to those produced before the strong-typing migration.
  const double seasonal =
      -config_.seasonal_amplitude_c *
      std::cos(2.0 * std::numbers::pi * (day - config_.seasonal_trough.days()) / 365.0);
  // Coldest hour of the day at diurnal_trough (default 4 am).
  const double hour = (day - std::floor(day)) * 24.0;
  const double diurnal =
      -config_.diurnal_amplitude_c *
      std::cos(2.0 * std::numbers::pi * (hour - config_.diurnal_trough.hours()) / 24.0);
  return config_.mean_c + seasonal + diurnal;
}

}  // namespace blam
