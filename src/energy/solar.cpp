#include "energy/solar.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numbers>
#include <sstream>
#include <stdexcept>

namespace blam {

namespace {

constexpr int kMinutesPerDay = 24 * 60;
constexpr int kDaysPerYear = 365;

enum class Weather { kClear, kCloudy, kOvercast };

double weather_scale(Weather w) {
  switch (w) {
    case Weather::kClear:
      return 1.0;
    case Weather::kCloudy:
      return 0.55;
    case Weather::kOvercast:
      return 0.18;
  }
  return 1.0;
}

}  // namespace

SolarTrace::SolarTrace(const SolarTraceConfig& config) {
  if (config.peak <= Power::zero()) {
    throw std::invalid_argument{"SolarTrace: peak power must be positive"};
  }
  if (config.winter_summer_ratio <= 0.0 || config.winter_summer_ratio > 1.0) {
    throw std::invalid_argument{"SolarTrace: winter_summer_ratio must be in (0,1]"};
  }
  if (config.min_day_hours <= 0.0 || config.min_day_hours > config.max_day_hours ||
      config.max_day_hours >= 24.0) {
    throw std::invalid_argument{"SolarTrace: invalid day-length range"};
  }

  Rng rng{config.seed, salt::kSolarTrace};
  watts_.resize(static_cast<std::size_t>(kDaysPerYear) * kMinutesPerDay);

  Weather weather = Weather::kCloudy;
  double noise = 0.0;  // Ornstein-Uhlenbeck state for intra-day variation
  const double noise_theta = 0.05;  // per-minute mean reversion
  const double noise_sigma = config.intraday_noise * std::sqrt(2.0 * noise_theta);

  for (int day = 0; day < kDaysPerYear; ++day) {
    // Season phase: day 172 (late June) is mid-summer.
    const double season =
        0.5 * (1.0 + std::cos(2.0 * std::numbers::pi * (day - 172) / 365.0));
    const double seasonal_peak =
        config.winter_summer_ratio + (1.0 - config.winter_summer_ratio) * season;
    const double day_hours =
        config.min_day_hours + (config.max_day_hours - config.min_day_hours) * season;
    const double sunrise_min = (24.0 - day_hours) / 2.0 * 60.0;
    const double sunset_min = sunrise_min + day_hours * 60.0;

    // Day-weather Markov step.
    const double u = rng.uniform();
    switch (weather) {
      case Weather::kClear:
        weather = u < config.clear_stay ? Weather::kClear
                  : u < config.clear_stay + 0.2 ? Weather::kCloudy
                                                : Weather::kOvercast;
        break;
      case Weather::kCloudy:
        weather = u < config.cloudy_stay               ? Weather::kCloudy
                  : u < config.cloudy_stay + 0.3 ? Weather::kClear
                                                 : Weather::kOvercast;
        break;
      case Weather::kOvercast:
        weather = u < config.overcast_stay               ? Weather::kOvercast
                  : u < config.overcast_stay + 0.35 ? Weather::kCloudy
                                                    : Weather::kClear;
        break;
    }
    const double clearness = weather_scale(weather);

    for (int minute = 0; minute < kMinutesPerDay; ++minute) {
      noise += noise_theta * (0.0 - noise) + noise_sigma * rng.normal();
      double p = 0.0;
      if (minute > sunrise_min && minute < sunset_min) {
        const double phase = (minute - sunrise_min) / (sunset_min - sunrise_min);
        const double envelope = std::sin(std::numbers::pi * phase);
        p = config.peak.watts() * seasonal_peak * clearness * envelope * envelope *
            std::max(0.0, 1.0 + noise);
      }
      watts_[static_cast<std::size_t>(day) * kMinutesPerDay + minute] = p;
    }
  }
  build_cumulative();
}

SolarTrace::SolarTrace(std::vector<double> watts) : watts_{std::move(watts)} {
  if (watts_.empty()) throw std::invalid_argument{"SolarTrace: empty trace"};
  build_cumulative();
}

SolarTrace SolarTrace::from_csv(const std::string& path, Power peak) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"SolarTrace: cannot open " + path};
  std::vector<double> watts;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Accept either "value" or "index,value"; skip non-numeric header lines.
    const auto comma = line.rfind(',');
    const std::string cell = comma == std::string::npos ? line : line.substr(comma + 1);
    try {
      watts.push_back(std::stod(cell));
    } catch (const std::exception&) {
      if (!watts.empty()) throw std::runtime_error{"SolarTrace: malformed row: " + line};
      // header row: skip
    }
  }
  if (watts.empty()) throw std::runtime_error{"SolarTrace: no samples in " + path};
  const double max = *std::max_element(watts.begin(), watts.end());
  if (max <= 0.0) throw std::runtime_error{"SolarTrace: trace has no positive samples"};
  for (double& w : watts) w = std::max(0.0, w) * peak.watts() / max;
  return SolarTrace{std::move(watts)};
}

void SolarTrace::build_cumulative() {
  cumulative_.resize(watts_.size() + 1);
  cumulative_[0] = 0.0;
  for (std::size_t i = 0; i < watts_.size(); ++i) {
    cumulative_[i + 1] = cumulative_[i] + watts_[i] * 60.0;  // W * 60 s
  }
  total_joules_ = cumulative_.back();
  peak_watts_ = *std::max_element(watts_.begin(), watts_.end());
}

Power SolarTrace::power_at(Time t) const {
  const Time in_period = ((t % period()) + period()) % period();
  const auto minute = static_cast<std::size_t>(in_period / Time::from_minutes(1.0));
  return Power::from_watts(watts_[std::min(minute, watts_.size() - 1)]);
}

double SolarTrace::cumulative_joules(Time t_in_period) const {
  const double minutes = t_in_period.seconds() / 60.0;
  const auto idx = static_cast<std::size_t>(minutes);
  if (idx >= watts_.size()) return total_joules_;
  const double frac = minutes - static_cast<double>(idx);
  return cumulative_[idx] + watts_[idx] * 60.0 * frac;
}

Energy SolarTrace::energy_between(Time t0, Time t1) const {
  if (t1 < t0) throw std::invalid_argument{"SolarTrace::energy_between: t1 < t0"};
  const Time p = period();
  const std::int64_t whole_periods = (t1 - t0) / p;
  const Time a = ((t0 % p) + p) % p;
  Time b = a + ((t1 - t0) % p);
  double joules = static_cast<double>(whole_periods) * total_joules_;
  if (b <= p) {
    joules += cumulative_joules(b) - cumulative_joules(a);
  } else {
    joules += (total_joules_ - cumulative_joules(a)) + cumulative_joules(b - p);
  }
  return Energy::from_joules(joules);
}

void SolarTrace::energy_windows(Time start, Time window, int n, Energy* out) const {
  if (window <= Time::zero()) {
    throw std::invalid_argument{"SolarTrace::energy_windows: window must be positive"};
  }
  const Time p = period();
  const std::int64_t whole_periods = window / p;
  const Time rem = window % p;
  // Walk the boundaries once: window i ends where window i+1 starts, with
  // the identical reduced-time argument, so each cumulative_joules value is
  // computed once and reused — the arithmetic per window matches
  // energy_between term for term.
  Time a = ((start % p) + p) % p;
  double cj_a = cumulative_joules(a);
  for (int i = 0; i < n; ++i) {
    double joules = static_cast<double>(whole_periods) * total_joules_;
    const Time b = a + rem;
    if (b <= p) {
      const double cj_b = cumulative_joules(b);
      joules += cj_b - cj_a;
      if (b == p) {
        // The next window starts at the wrapped origin, where the
        // cumulative integral restarts from exactly zero.
        a = Time::zero();
        cj_a = 0.0;
      } else {
        a = b;
        cj_a = cj_b;
      }
    } else {
      const Time a_next = b - p;
      const double cj_next = cumulative_joules(a_next);
      joules += (total_joules_ - cj_a) + cj_next;
      a = a_next;
      cj_a = cj_next;
    }
    out[i] = Energy::from_joules(joules);
  }
}

Harvester::Harvester(const SolarTrace& trace, double panel_scale)
    : trace_{&trace}, panel_scale_{panel_scale} {
  if (panel_scale <= 0.0) throw std::invalid_argument{"Harvester: panel_scale must be positive"};
}

void Harvester::resample_jitter(Rng& rng, double spread) {
  spread = std::clamp(spread, 0.0, 1.0);
  jitter_ = rng.uniform(1.0 - spread, 1.0);
}

Power Harvester::power_at(Time t) const {
  return trace_->power_at(t) * (panel_scale_ * jitter_);
}

Energy Harvester::energy_between(Time t0, Time t1) const {
  return trace_->energy_between(t0, t1) * (panel_scale_ * jitter_);
}

void Harvester::energy_windows(Time start, Time window, int n, Energy* out) const {
  trace_->energy_windows(start, window, n, out);
  for (int i = 0; i < n; ++i) out[i] = out[i] * (panel_scale_ * jitter_);
}

}  // namespace blam
