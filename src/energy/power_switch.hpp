// Software-defined power switch (paper Fig. 1 and Eq. 5).
//
// For each accounting interval the switch routes energy: green energy powers
// the node first; any surplus charges the storage up to the protocol's SoC
// cap theta (the paper's y_u[t] policy); any deficit is drawn from storage.
// A deficit the storage cannot cover is reported as a brownout so the MAC
// can drop/skip the transmission.
//
// With an (optional) supercapacitor attached, the cap sits in front of the
// battery: surplus fills the cap first and deficits drain it first, so
// transmission micro-cycles never reach the battery while the cap holds —
// the hybrid-storage extension the paper defers to future work.
#pragma once

#include "common/units.hpp"
#include "energy/battery.hpp"
#include "energy/supercap.hpp"

namespace blam {

struct PowerFlow {
  /// Energy supplied to the load from the green source.
  Energy from_green;
  /// Energy supplied to the load from storage (supercap first, then the
  /// battery when a cap is attached).
  Energy from_battery;
  /// Surplus green energy absorbed by the battery.
  Energy charged;
  /// Surplus green energy discarded (battery full or above the theta cap).
  Energy wasted;
  /// Demand that could not be met (load browned out).
  Energy deficit;

  [[nodiscard]] bool brownout() const { return deficit > Energy::zero(); }
};

class PowerSwitch {
 public:
  /// `soc_cap` is the theta threshold: max stored energy as a fraction of
  /// the battery's original capacity. Throws if outside [0, 1].
  PowerSwitch(Battery& battery, double soc_cap);

  /// Attaches a supercapacitor in front of the battery (nullptr detaches).
  /// The switch does not own it.
  void attach_supercap(Supercap* supercap) { supercap_ = supercap; }

  /// Routes `harvest` and `demand` over one interval; applies Eq. 5.
  PowerFlow apply(Energy harvest, Energy demand);

  [[nodiscard]] double soc_cap() const { return soc_cap_; }
  void set_soc_cap(double soc_cap);

  [[nodiscard]] const Battery& battery() const { return *battery_; }
  [[nodiscard]] Battery& battery() { return *battery_; }
  [[nodiscard]] const Supercap* supercap() const { return supercap_; }

 private:
  Battery* battery_;
  Supercap* supercap_{nullptr};
  double soc_cap_;
};

}  // namespace blam
