#include "energy/supercap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace blam {

Supercap::Supercap(Energy capacity, double charge_efficiency, double leak_per_day)
    : capacity_{capacity}, efficiency_{charge_efficiency}, leak_per_day_{leak_per_day} {
  if (capacity <= Energy::zero()) throw std::invalid_argument{"Supercap: capacity must be positive"};
  if (charge_efficiency <= 0.0 || charge_efficiency > 1.0) {
    throw std::invalid_argument{"Supercap: efficiency must be in (0,1]"};
  }
  if (leak_per_day < 0.0 || leak_per_day >= 1.0) {
    throw std::invalid_argument{"Supercap: leak_per_day must be in [0,1)"};
  }
}

Energy Supercap::charge(Energy amount) {
  if (amount < Energy::zero()) throw std::invalid_argument{"Supercap::charge: negative amount"};
  const Energy headroom = capacity_ - stored_;
  // Consuming `c` from the source stores c * efficiency.
  const Energy consumable = std::min(amount, headroom / efficiency_);
  stored_ += consumable * efficiency_;
  return consumable;
}

Energy Supercap::discharge(Energy amount) {
  if (amount < Energy::zero()) throw std::invalid_argument{"Supercap::discharge: negative amount"};
  const Energy supplied = std::min(amount, stored_);
  stored_ -= supplied;
  return supplied;
}

void Supercap::leak(Time dt) {
  if (dt < Time::zero()) throw std::invalid_argument{"Supercap::leak: negative duration"};
  if (leak_per_day_ == 0.0 || stored_ <= Energy::zero()) return;
  // Exponential decay with per-day retention (1 - leak).
  const double retention = std::pow(1.0 - leak_per_day_, dt.days());
  stored_ = stored_ * retention;
}

}  // namespace blam
