// Solar (photovoltaic) energy source.
//
// The paper drives its evaluation with the NREL "Solar Power Data for
// Integration Studies" year-long trace, scaled so that peak power sustains
// two transmissions, with random per-node variation emulating cloud cover
// and shading. That dataset is not redistributable here, so SolarTrace
// synthesizes a statistically similar year: a clear-sky diurnal/seasonal
// envelope modulated by a per-day clearness state (Markov chain over clear /
// partly-cloudy / overcast) and smooth intra-day noise. A CSV loader is
// provided for running against real traces.
//
// The trace stores per-minute power over one year plus a cumulative-energy
// array, so any interval integral is O(1); the year repeats periodically for
// multi-year simulations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace blam {

struct SolarTraceConfig {
  /// Peak (clear-sky, solar-noon, mid-summer) panel output.
  Power peak{Power::from_milli_watts(10.0)};
  std::uint64_t seed{1};
  /// Latitude-like seasonality: ratio of winter to summer peak (0..1].
  double winter_summer_ratio{0.45};
  /// Shortest/longest day length in hours.
  double min_day_hours{9.0};
  double max_day_hours{15.0};
  /// Markov day-weather states: stay probabilities and output scale.
  double clear_stay{0.7};
  double cloudy_stay{0.5};
  double overcast_stay{0.4};
  /// Smooth intra-day noise amplitude (fraction of instantaneous power).
  double intraday_noise{0.15};
};

/// Thread safety: a SolarTrace is immutable once constructed — power_at /
/// energy_between only read the sample arrays — so one trace may be shared
/// (by const reference / shared_ptr<const SolarTrace>) across sweep workers.
/// This is the one object scenario-grid cells share; see sim/sweep_runner.hpp.
class SolarTrace {
 public:
  /// Synthesizes a year-long (525600-minute) trace.
  explicit SolarTrace(const SolarTraceConfig& config);

  /// Loads per-minute power samples (watts, one column named or unnamed) and
  /// scales them so the maximum equals `peak`. The file must contain at
  /// least one sample; the trace repeats with the file's length as period.
  static SolarTrace from_csv(const std::string& path, Power peak);

  /// Instantaneous power at simulation time `t` (year wraps around).
  [[nodiscard]] Power power_at(Time t) const;

  /// Exact integral of power over [t0, t1]; O(1) via cumulative sums.
  /// Requires t0 <= t1.
  [[nodiscard]] Energy energy_between(Time t0, Time t1) const;

  /// Energies of `n` consecutive windows [start + i*window, start +
  /// (i+1)*window) into out[0..n). Bit-identical to calling energy_between
  /// per window, but each shared window boundary is looked up once instead
  /// of twice — this halves the cost of a node's per-period forecast sweep.
  /// Requires window > 0 and room for n results in `out`.
  void energy_windows(Time start, Time window, int n, Energy* out) const;

  [[nodiscard]] Time period() const { return Time::from_minutes(static_cast<double>(watts_.size())); }
  [[nodiscard]] std::size_t samples() const { return watts_.size(); }
  /// Largest per-minute sample; cached at construction (the trace is
  /// immutable, and setup code queries this per node).
  [[nodiscard]] Power peak() const { return Power::from_watts(peak_watts_); }

 private:
  explicit SolarTrace(std::vector<double> watts);

  void build_cumulative();

  /// Cumulative energy (J) from trace start to time `t` within one period,
  /// with linear interpolation inside a minute.
  [[nodiscard]] double cumulative_joules(Time t_in_period) const;

  std::vector<double> watts_;        // per-minute power samples
  std::vector<double> cumulative_;   // cumulative_[i] = J from 0 to minute i
  double total_joules_{0.0};         // energy of one full period
  double peak_watts_{0.0};           // max of watts_, cached for peak()
};

/// A node's view of the shared trace: panel scale (fixed per node, modeling
/// panel size / orientation / permanent shading) times a slowly-varying
/// cloud jitter the caller updates once per sampling period.
class Harvester {
 public:
  Harvester(const SolarTrace& trace, double panel_scale);

  /// Draws a new cloud-jitter factor for the coming period (uniform in
  /// [1-spread, 1]; local clouds only reduce output).
  void resample_jitter(Rng& rng, double spread = 0.3);

  [[nodiscard]] double jitter() const { return jitter_; }
  [[nodiscard]] double panel_scale() const { return panel_scale_; }

  /// Checkpoint restore: reinstates the jitter factor without an RNG draw.
  void restore_jitter(double jitter) { jitter_ = jitter; }

  [[nodiscard]] Power power_at(Time t) const;
  [[nodiscard]] Energy energy_between(Time t0, Time t1) const;

  /// Batched consecutive-window energies (see SolarTrace::energy_windows),
  /// scaled by this node's panel factor; bit-identical to per-window calls.
  void energy_windows(Time start, Time window, int n, Energy* out) const;

 private:
  // blam-ckpt: skip -- wiring; the trace is immutable and regenerated from (seed, solar config)
  const SolarTrace* trace_;
  // blam-ckpt: skip -- deployment output; plan_deployment replays deterministically from the scenario seed
  double panel_scale_;
  double jitter_{1.0};
};

}  // namespace blam
