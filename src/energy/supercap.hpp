// Supercapacitor buffer for hybrid battery+supercap storage.
//
// The paper's related work discusses hybrid power management with
// supercapacitors (Petrariu et al.) and leaves "setups considering
// supercapacitors" as future work; this module implements that extension.
// A small supercap absorbs the transmission micro-cycles before they reach
// the battery (cycle-aging relief), at the price of leakage — supercaps
// self-discharge orders of magnitude faster than batteries, so they cannot
// bridge nights, which is exactly why the battery (and the paper's MAC)
// remains necessary.
#pragma once

#include "common/units.hpp"

namespace blam {

class Supercap {
 public:
  /// `capacity` > 0; `charge_efficiency` in (0, 1]; `leak_per_day` in
  /// [0, 1) is the fraction of stored energy lost per day.
  Supercap(Energy capacity, double charge_efficiency = 0.95, double leak_per_day = 0.2);

  [[nodiscard]] Energy capacity() const { return capacity_; }
  [[nodiscard]] Energy stored() const { return stored_; }
  [[nodiscard]] double fill() const { return stored_ / capacity_; }

  /// Offers `amount` for storage; returns the energy CONSUMED from the
  /// source (stored energy grows by consumed * efficiency).
  Energy charge(Energy amount);

  /// Draws up to `amount`; returns the energy actually supplied.
  Energy discharge(Energy amount);

  /// Applies exponential self-discharge over `dt`.
  void leak(Time dt);

  /// Checkpoint restore: assigns the stored energy verbatim.
  void restore_stored(Energy stored) { stored_ = stored; }

 private:
  // blam-ckpt: skip -- construction input (scenario supercap_tx_buffer); stored is serialized
  Energy capacity_;
  Energy stored_{};
  // blam-ckpt: skip -- construction input (scenario supercap_efficiency)
  double efficiency_;
  // blam-ckpt: skip -- construction input (scenario supercap_leak_per_day)
  double leak_per_day_;
};

}  // namespace blam
