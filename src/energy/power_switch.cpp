#include "energy/power_switch.hpp"

#include <stdexcept>

namespace blam {

PowerSwitch::PowerSwitch(Battery& battery, double soc_cap) : battery_{&battery}, soc_cap_{0.0} {
  set_soc_cap(soc_cap);
}

void PowerSwitch::set_soc_cap(double soc_cap) {
  if (soc_cap < 0.0 || soc_cap > 1.0) {
    throw std::invalid_argument{"PowerSwitch: soc_cap must be in [0,1]"};
  }
  soc_cap_ = soc_cap;
}

PowerFlow PowerSwitch::apply(Energy harvest, Energy demand) {
  if (harvest < Energy::zero() || demand < Energy::zero()) {
    throw std::invalid_argument{"PowerSwitch::apply: negative energy"};
  }
  PowerFlow flow{};
  if (harvest >= demand) {
    flow.from_green = demand;
    Energy surplus = harvest - demand;
    if (supercap_ != nullptr) {
      const Energy into_cap = supercap_->charge(surplus);
      flow.charged += into_cap;
      surplus -= into_cap;
    }
    const Energy into_battery = battery_->charge(surplus, soc_cap_);
    flow.charged += into_battery;
    flow.wasted = surplus - into_battery;
  } else {
    flow.from_green = harvest;
    Energy shortfall = demand - harvest;
    if (supercap_ != nullptr) {
      const Energy from_cap = supercap_->discharge(shortfall);
      flow.from_battery += from_cap;  // "from storage"; cap drains first
      shortfall -= from_cap;
    }
    const Energy from_battery = battery_->discharge(shortfall);
    flow.from_battery += from_battery;
    flow.deficit = shortfall - from_battery;
  }
  return flow;
}

}  // namespace blam
