// Rechargeable battery: stored energy, state of charge, and capacity fade.
//
// Terminology follows the paper (Sec. II-B): *SoC* is stored energy divided
// by the ORIGINAL maximum capacity; *degradation* is the fraction of original
// capacity lost; the battery reaches end of life when degradation crosses
// 20%. Degradation itself is computed by the degradation module from the SoC
// trace — the battery only stores energy and applies the fade it is told.
#pragma once

#include <stdexcept>

#include "common/units.hpp"

namespace blam {

class Battery {
 public:
  /// Creates a battery with `original_capacity` and an initial stored energy
  /// of `initial_soc * original_capacity`. Throws on non-positive capacity
  /// or initial SoC outside [0, 1].
  // blam-lint: allow(U1) -- SoC is a dimensionless fraction in [0,1]; no strong unit applies
  Battery(Energy original_capacity, double initial_soc);

  [[nodiscard]] Energy original_capacity() const { return original_capacity_; }

  /// Usable capacity right now: original * (1 - degradation).
  [[nodiscard]] Energy current_capacity() const {
    return original_capacity_ * (1.0 - degradation_);
  }

  [[nodiscard]] Energy stored() const { return stored_; }

  /// State of charge relative to the ORIGINAL capacity (paper definition).
  [[nodiscard]] double soc() const { return stored_ / original_capacity_; }

  [[nodiscard]] double degradation() const { return degradation_; }

  /// True once degradation >= `threshold` (default: the 20% EoL rule).
  [[nodiscard]] bool at_end_of_life(double threshold = 0.2) const {
    return degradation_ >= threshold;
  }

  /// Adds energy, clamped by both the current capacity and `soc_cap` (the
  /// protocol's theta threshold, as a fraction of original capacity).
  /// Returns the energy actually absorbed.
  Energy charge(Energy amount, double soc_cap = 1.0);

  /// Draws energy; returns the energy actually supplied (may be less than
  /// requested if the battery empties).
  Energy discharge(Energy amount);

  /// Updates capacity fade (monotonically non-decreasing, clamped to [0,1]).
  /// If the stored energy now exceeds the shrunken capacity it is clamped.
  void set_degradation(double degradation);

  /// Checkpoint restore: assigns both words verbatim, bypassing the
  /// monotonicity and clamp rules (the checkpointed pair already satisfied
  /// them when it was captured).
  void restore_raw(Energy stored, double degradation) {
    stored_ = stored;
    degradation_ = degradation;
  }

 private:
  // blam-ckpt: skip -- construction input (scenario battery_days); stored and degradation are serialized
  Energy original_capacity_;
  Energy stored_;
  double degradation_{0.0};
};

}  // namespace blam
