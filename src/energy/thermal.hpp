// Ambient/battery temperature model.
//
// The paper's evaluation fixes the battery's internal temperature at 25 C
// ("we consider the battery to be insulated"). Real outdoor LPWAN nodes are
// not always insulated, and both aging terms (Eqs. 1-2) carry the shared
// temperature stress S_T — so this extension provides a deterministic
// seasonal + diurnal ambient model the degradation tracker can follow, with
// the paper's insulated behaviour as the default.
#pragma once

#include "common/units.hpp"

namespace blam {

struct ThermalConfig {
  /// Insulated battery at a fixed temperature (the paper's setting).
  bool insulated{true};
  double fixed_c{25.0};

  // Outdoor model (used when insulated == false):
  //   T(t) = mean + seasonal * cos(year phase) + diurnal * cos(day phase)
  // with the year's coldest point at `seasonal_trough` into the year and
  // the day's coldest at `diurnal_trough` into the day.
  double mean_c{15.0};
  double seasonal_amplitude_c{10.0};
  double diurnal_amplitude_c{6.0};

  // Phase troughs are strongly-typed simulation times (U1: raw double
  // days/hours cannot sneak back in). Defaults: mid-January, ~4 am.
  /// Offset into the year of the seasonal minimum; must lie in [0, 365 d).
  Time seasonal_trough{Time::from_days(15.0)};
  /// Offset into the day of the diurnal minimum; must lie in [0, 24 h).
  Time diurnal_trough{Time::from_hours(4.0)};
};

class TemperatureModel {
 public:
  explicit TemperatureModel(const ThermalConfig& config);

  /// Battery temperature (deg C) at simulation time `t`.
  [[nodiscard]] double at(Time t) const;

  [[nodiscard]] const ThermalConfig& config() const { return config_; }

 private:
  ThermalConfig config_;
};

}  // namespace blam
