#include "energy/battery.hpp"

#include <algorithm>

namespace blam {

Battery::Battery(Energy original_capacity, double initial_soc)
    : original_capacity_{original_capacity},
      stored_{original_capacity * initial_soc} {
  if (original_capacity <= Energy::zero()) {
    throw std::invalid_argument{"Battery: capacity must be positive"};
  }
  if (initial_soc < 0.0 || initial_soc > 1.0) {
    throw std::invalid_argument{"Battery: initial SoC must be in [0,1]"};
  }
}

Energy Battery::charge(Energy amount, double soc_cap) {
  if (amount < Energy::zero()) throw std::invalid_argument{"Battery::charge: negative amount"};
  soc_cap = std::clamp(soc_cap, 0.0, 1.0);
  const Energy limit = std::min(current_capacity(), original_capacity_ * soc_cap);
  const Energy headroom = limit > stored_ ? limit - stored_ : Energy::zero();
  const Energy absorbed = std::min(amount, headroom);
  stored_ += absorbed;
  return absorbed;
}

Energy Battery::discharge(Energy amount) {
  if (amount < Energy::zero()) throw std::invalid_argument{"Battery::discharge: negative amount"};
  const Energy supplied = std::min(amount, stored_);
  stored_ -= supplied;
  return supplied;
}

void Battery::set_degradation(double degradation) {
  degradation_ = std::clamp(degradation, degradation_, 1.0);
  stored_ = std::min(stored_, current_capacity());
}

}  // namespace blam
