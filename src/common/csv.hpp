// Minimal CSV emission used by the bench binaries so figure data can be
// re-plotted outside the repo. Values are written with full round-trip
// precision; strings containing separators/quotes are quoted per RFC 4180.
//
// Emission is atomic: rows go to `<path>.tmp`, and flush() renames it onto
// the final path after a successful flush+close. A crash (or an exception)
// mid-write therefore never leaves a truncated CSV where a complete one is
// expected — the stale temp file is the only debris. The destructor flags a
// writer that was never flush()ed (assert in debug builds, stderr warning in
// release), because a forgotten flush now means NO output file at all.
//
// Thread safety: a CsvWriter owns one output stream and is NOT safe to share
// across sweep workers. The supported pattern (used by every figure binary)
// is aggregate-then-write: workers produce rows, the main thread writes the
// file after the sweep joins. The static cell() formatters are pure.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace blam {

class CsvWriter {
 public:
  /// Opens `<path>.tmp` for writing and emits the header row; `path` itself
  /// appears only when flush() commits. Throws std::runtime_error if the
  /// temp file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Renames the temp file away if flush() was never called (see flush()).
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; the number of cells must match the header width.
  /// Throws std::logic_error after flush() (the file is already committed).
  void row(const std::vector<std::string>& cells);

  /// Commits the file: flushes, closes, and atomically renames the temp
  /// file onto the final path. Throws std::runtime_error if the stream has
  /// failed (disk full, deleted directory, ...) or the rename fails. Until
  /// this succeeds the final path is untouched. Idempotent.
  void flush();

  /// Whether flush() committed the file.
  [[nodiscard]] bool committed() const { return committed_; }

  [[nodiscard]] static std::string cell(double v);
  [[nodiscard]] static std::string cell(std::int64_t v);
  [[nodiscard]] static std::string cell(std::uint64_t v);
  [[nodiscard]] static std::string cell(std::string_view v);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
  std::size_t width_;
  bool committed_{false};
  /// Exceptions in flight at construction; the destructor only flags a
  /// missing flush() when no NEW exception is unwinding through it.
  int uncaught_at_ctor_{0};
};

}  // namespace blam
