// Minimal CSV emission used by the bench binaries so figure data can be
// re-plotted outside the repo. Values are written with full round-trip
// precision; strings containing separators/quotes are quoted per RFC 4180.
//
// Thread safety: a CsvWriter owns one output stream and is NOT safe to share
// across sweep workers. The supported pattern (used by every figure binary)
// is aggregate-then-write: workers produce rows, the main thread writes the
// file after the sweep joins. The static cell() formatters are pure.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace blam {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Flushes buffered rows and throws std::runtime_error if the stream has
  /// failed (disk full, deleted directory, ...). Call before reporting a
  /// file as written; the destructor cannot safely signal these failures.
  void flush();

  [[nodiscard]] static std::string cell(double v);
  [[nodiscard]] static std::string cell(std::int64_t v);
  [[nodiscard]] static std::string cell(std::uint64_t v);
  [[nodiscard]] static std::string cell(std::string_view v);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace blam
