// Minimal CSV emission used by the bench binaries so figure data can be
// re-plotted outside the repo. Values are written with full round-trip
// precision; strings containing separators/quotes are quoted per RFC 4180.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace blam {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] static std::string cell(double v);
  [[nodiscard]] static std::string cell(std::int64_t v);
  [[nodiscard]] static std::string cell(std::uint64_t v);
  [[nodiscard]] static std::string cell(std::string_view v);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace blam
