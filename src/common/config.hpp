// Minimal key=value configuration-file parser for the scenario-runner CLI.
//
// Format: one `key = value` per line; '#' starts a comment; blank lines
// ignored. Keys are case-sensitive. Typed getters return the parsed value
// or the supplied default; a malformed value for a requested key throws
// (silently ignoring typos in VALUES is worse than failing). Unknown KEYS
// can be audited with unused_keys() so callers can reject misspelled ones.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace blam {

class ConfigFile {
 public:
  /// Parses from a file; throws std::runtime_error if unreadable or any
  /// line is not `key = value` / comment / blank.
  static ConfigFile load(const std::string& path);

  /// Parses from a string (tests and inline defaults).
  static ConfigFile parse(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) const;
  /// Rejects non-finite values (nan/inf parse as doubles but poison every
  /// downstream range check, so they are malformed here).
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  /// get_double, additionally requiring value > 0 (durations, capacities).
  [[nodiscard]] double get_positive_double(const std::string& key, double fallback) const;
  /// get_double, additionally requiring value >= 0 (rates, fractions).
  [[nodiscard]] double get_non_negative_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// Accepts true/false/1/0/yes/no/on/off (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present in the file that were never read by any getter; call
  /// after configuration to catch typos.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  [[nodiscard]] const std::string* find(const std::string& key) const;

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> touched_;
};

}  // namespace blam
