// Streaming statistics used by the metrics layer and the benchmark tables.
//
// Thread safety: none of these accumulators synchronize — each sweep cell
// owns its own Metrics (and therefore its own stats), which is what keeps
// parallel grids race-free. QuantileSampler in particular sorts lazily under
// const (mutable members), so even read-only sharing across workers is a
// data race; aggregate per cell and merge() on the joining thread instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace blam {

/// Numerically-stable running mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Raw accumulator words, for engine checkpoints; restore_raw() is
  /// bit-exact (the infinities of an empty accumulator round-trip through
  /// the codec's hex bit patterns).
  struct Raw {
    std::size_t n{0};
    double mean{0.0};
    double m2{0.0};
    double min{0.0};
    double max{0.0};
  };

  [[nodiscard]] Raw raw() const { return Raw{n_, mean_, m2_, min_, max_}; }

  void restore_raw(const Raw& raw) {
    n_ = raw.n;
    mean_ = raw.mean;
    m2_ = raw.m2;
    min_ = raw.min;
    max_ = raw.max;
  }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are clamped into
/// the first/last bin so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of samples in a bin; 0 when empty.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_{0};
};

/// Buffered sampler with exact quantiles; suitable for per-node aggregates
/// (hundreds to a few million samples).
class QuantileSampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void merge(const QuantileSampler& other);
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// q in [0, 1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
};

/// Five-number summary used when printing box-plot style figure rows.
struct BoxSummary {
  double min{0.0};
  double q1{0.0};
  double median{0.0};
  double q3{0.0};
  double max{0.0};
  double mean{0.0};
  /// Count of points outside 1.5 IQR whiskers.
  std::size_t outliers{0};

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] BoxSummary summarize_box(const std::vector<double>& values);

}  // namespace blam
