#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace blam {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument{"Histogram requires at least one bin"};
  if (!(hi > lo)) throw std::invalid_argument{"Histogram requires hi > lo"};
}

void Histogram::add(double x) {
  auto bin = static_cast<std::int64_t>((x - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

void QuantileSampler::merge(const QuantileSampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

double QuantileSampler::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double QuantileSampler::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::string BoxSummary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g outliers=%zu", min, q1,
                median, q3, max, mean, outliers);
  return buf;
}

BoxSummary summarize_box(const std::vector<double>& values) {
  BoxSummary box;
  if (values.empty()) return box;
  QuantileSampler sampler;
  for (double v : values) sampler.add(v);
  box.min = sampler.quantile(0.0);
  box.q1 = sampler.quantile(0.25);
  box.median = sampler.quantile(0.5);
  box.q3 = sampler.quantile(0.75);
  box.max = sampler.quantile(1.0);
  box.mean = sampler.mean();
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  for (double v : values) {
    if (v < lo_fence || v > hi_fence) ++box.outliers;
  }
  return box;
}

}  // namespace blam
