// Lightweight leveled logger. The simulation hot path never logs above
// kDebug, and debug logging compiles down to a level check, so the logger
// costs one branch when disabled.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace blam {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] static LogLevel level() { return level_; }
  [[nodiscard]] static bool enabled(LogLevel level) { return level >= level_; }

  template <typename... Args>
  static void debug(const char* fmt, Args... args) {
    write(LogLevel::kDebug, fmt, args...);
  }
  template <typename... Args>
  static void info(const char* fmt, Args... args) {
    write(LogLevel::kInfo, fmt, args...);
  }
  template <typename... Args>
  static void warn(const char* fmt, Args... args) {
    write(LogLevel::kWarn, fmt, args...);
  }
  template <typename... Args>
  static void error(const char* fmt, Args... args) {
    write(LogLevel::kError, fmt, args...);
  }

 private:
  template <typename... Args>
  static void write(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    std::fprintf(stderr, "[%s] ", name(level));
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, stderr);
    } else {
      std::fprintf(stderr, fmt, args...);
    }
    std::fputc('\n', stderr);
  }

  [[nodiscard]] static const char* name(LogLevel level);

  static LogLevel level_;
};

}  // namespace blam
