// Lightweight leveled logger. The simulation hot path never logs above
// kDebug, and debug logging compiles down to a level check, so the logger
// costs one branch when disabled.
//
// Thread safety: the level is the only mutable state and is a relaxed
// atomic, so sweep workers may log (and even flip the level) concurrently
// without data races. Each emitted line is a single stdio call, which locks
// the stream, so lines from different workers never shear mid-line, though
// their relative order is scheduling-dependent.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

namespace blam {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Log {
 public:
  static void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] static bool enabled(LogLevel level) { return level >= Log::level(); }

  template <typename... Args>
  static void debug(const char* fmt, Args... args) {
    write(LogLevel::kDebug, fmt, args...);
  }
  template <typename... Args>
  static void info(const char* fmt, Args... args) {
    write(LogLevel::kInfo, fmt, args...);
  }
  template <typename... Args>
  static void warn(const char* fmt, Args... args) {
    write(LogLevel::kWarn, fmt, args...);
  }
  template <typename... Args>
  static void error(const char* fmt, Args... args) {
    write(LogLevel::kError, fmt, args...);
  }

 private:
  template <typename... Args>
  static void write(LogLevel level, const char* fmt, Args... args) {
    if (!enabled(level)) return;
    // One stdio call per line so concurrent sweep workers cannot shear a
    // line into interleaved fragments (stdio locks the stream per call).
    const std::string line = std::string{"["} + name(level) + "] " + fmt + "\n";
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(line.c_str(), stderr);
    } else {
      std::fprintf(stderr, line.c_str(), args...);
    }
  }

  [[nodiscard]] static const char* name(LogLevel level);

  static std::atomic<LogLevel> level_;
};

}  // namespace blam
