#include "common/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace blam {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_{path}, width_{header.size()} {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
  if (width_ == 0) throw std::invalid_argument{"CsvWriter: empty header"};
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) throw std::invalid_argument{"CsvWriter: row width mismatch"};
  write_row(cells);
}

void CsvWriter::flush() {
  out_.flush();
  if (!out_) throw std::runtime_error{"CsvWriter: write failed (stream in error state)"};
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string CsvWriter::cell(std::int64_t v) { return std::to_string(v); }

std::string CsvWriter::cell(std::uint64_t v) { return std::to_string(v); }

std::string CsvWriter::cell(std::string_view v) {
  const bool needs_quotes = v.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{v};
  std::string quoted = "\"";
  for (char c : v) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace blam
