#include "common/csv.hpp"

#include <cassert>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace blam {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_{path + ".tmp"},
      path_{path},
      tmp_path_{path + ".tmp"},
      width_{header.size()},
      uncaught_at_ctor_{std::uncaught_exceptions()} {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + tmp_path_};
  if (width_ == 0) throw std::invalid_argument{"CsvWriter: empty header"};
  write_row(header);
}

CsvWriter::~CsvWriter() {
  if (committed_) return;
  out_.close();
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
  // During an exception unwind the missing flush() is expected — the writer
  // is cleaning up a failed run and the final path correctly stays stale.
  if (std::uncaught_exceptions() > uncaught_at_ctor_) return;
  std::fprintf(stderr, "CsvWriter: %s was written but never flush()ed — no file emitted\n",
               path_.c_str());
  assert(!"CsvWriter: flush() was never called on a written file");
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (committed_) throw std::logic_error{"CsvWriter: row() after flush() on " + path_};
  if (cells.size() != width_) throw std::invalid_argument{"CsvWriter: row width mismatch"};
  write_row(cells);
}

void CsvWriter::flush() {
  if (committed_) return;
  out_.flush();
  if (!out_) throw std::runtime_error{"CsvWriter: write failed (stream in error state)"};
  out_.close();
  if (out_.fail()) throw std::runtime_error{"CsvWriter: close failed for " + tmp_path_};
  std::error_code ec;
  std::filesystem::rename(tmp_path_, path_, ec);
  if (ec) {
    throw std::runtime_error{"CsvWriter: cannot rename " + tmp_path_ + " to " + path_ + ": " +
                             ec.message()};
  }
  committed_ = true;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string CsvWriter::cell(std::int64_t v) { return std::to_string(v); }

std::string CsvWriter::cell(std::uint64_t v) { return std::to_string(v); }

std::string CsvWriter::cell(std::string_view v) {
  const bool needs_quotes = v.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string{v};
  std::string quoted = "\"";
  for (char c : v) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace blam
