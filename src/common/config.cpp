#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace blam {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"ConfigFile: cannot open " + path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile config;
  std::istringstream in{text};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error{"ConfigFile: line " + std::to_string(line_no) +
                               " is not `key = value`: " + line};
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error{"ConfigFile: empty key on line " + std::to_string(line_no)};
    }
    config.values_[key] = value;
  }
  return config;
}

const std::string* ConfigFile::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return nullptr;
  touched_.insert(key);
  return &it->second;
}

bool ConfigFile::has(const std::string& key) const { return values_.contains(key); }

std::string ConfigFile::get_string(const std::string& key, const std::string& fallback) const {
  const std::string* v = find(key);
  return v != nullptr ? *v : fallback;
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  double parsed = 0.0;
  try {
    std::size_t consumed = 0;
    parsed = std::stod(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument{"trailing junk"};
  } catch (const std::exception&) {
    throw std::runtime_error{"ConfigFile: key '" + key + "' is not a number: " + *v};
  }
  // stod happily parses "nan" and "inf"; both sail through < / > range
  // guards downstream, so they are rejected at the door.
  if (!std::isfinite(parsed)) {
    throw std::runtime_error{"ConfigFile: key '" + key + "' must be finite (got " + *v + ")"};
  }
  return parsed;
}

double ConfigFile::get_positive_double(const std::string& key, double fallback) const {
  const double parsed = get_double(key, fallback);
  if (!(parsed > 0.0)) {
    throw std::runtime_error{"ConfigFile: key '" + key + "' must be > 0 (got " +
                             std::to_string(parsed) + ")"};
  }
  return parsed;
}

double ConfigFile::get_non_negative_double(const std::string& key, double fallback) const {
  const double parsed = get_double(key, fallback);
  if (!(parsed >= 0.0)) {
    throw std::runtime_error{"ConfigFile: key '" + key + "' must be >= 0 (got " +
                             std::to_string(parsed) + ")"};
  }
  return parsed;
}

std::int64_t ConfigFile::get_int(const std::string& key, std::int64_t fallback) const {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument{"trailing junk"};
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error{"ConfigFile: key '" + key + "' is not an integer: " + *v};
  }
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  const std::string s = lower(*v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::runtime_error{"ConfigFile: key '" + key + "' is not a boolean: " + *v};
}

std::vector<std::string> ConfigFile::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (!touched_.contains(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace blam
