#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace blam {

namespace {

std::string format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

std::string Time::to_string() const {
  const double s = seconds();
  if (std::abs(s) < 1e-3) return format("%.0f us", static_cast<double>(us_));
  if (std::abs(s) < 1.0) return format("%.3f ms", s * 1e3);
  if (std::abs(s) < 120.0) return format("%.3f s", s);
  if (std::abs(s) < 7200.0) return format("%.2f min", s / 60.0);
  if (std::abs(s) < 2.0 * 86400.0) return format("%.2f h", s / 3600.0);
  return format("%.2f d", s / 86400.0);
}

std::string Energy::to_string() const {
  if (std::abs(j_) < 1.0) return format("%.3f mJ", j_ * 1e3);
  return format("%.3f J", j_);
}

std::string Power::to_string() const {
  if (std::abs(w_) < 1.0) return format("%.3f mW", w_ * 1e3);
  return format("%.3f W", w_);
}

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
double linear_to_db(double linear) { return 10.0 * std::log10(linear); }
double dbm_to_watts(double dbm) { return std::pow(10.0, (dbm - 30.0) / 10.0); }
double watts_to_dbm(double watts) { return 10.0 * std::log10(watts) + 30.0; }

}  // namespace blam
