// Small checksum primitives shared by the wire codec and the gateway's
// report-integrity validation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace blam {

namespace detail {

/// CRC-8/SMBUS (polynomial 0x07, init 0x00, no reflection) lookup table.
/// Table-driven because report checksums run twice per uplink (node stamp,
/// gateway verify) — on the simulation hot path, not just at the edges.
inline constexpr std::array<std::uint8_t, 256> kCrc8Table = [] {
  std::array<std::uint8_t, 256> table{};
  for (int value = 0; value < 256; ++value) {
    auto crc = static_cast<std::uint8_t>(value);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80) != 0 ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                              : static_cast<std::uint8_t>(crc << 1);
    }
    table[static_cast<std::size_t>(value)] = crc;
  }
  return table;
}();

}  // namespace detail

/// One CRC-8/SMBUS step: feeds `byte` into the running `crc`.
[[nodiscard]] inline std::uint8_t crc8_step(std::uint8_t crc, std::uint8_t byte) {
  return detail::kCrc8Table[static_cast<std::uint8_t>(crc ^ byte)];
}

[[nodiscard]] inline std::uint8_t crc8(std::span<const std::uint8_t> bytes) {
  std::uint8_t crc = 0x00;
  for (const std::uint8_t byte : bytes) crc = crc8_step(crc, byte);
  return crc;
}

}  // namespace blam
