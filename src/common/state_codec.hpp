// Line-oriented "blamsim v1" checkpoint codec.
//
// A checkpoint is a sequence of named sections; inside a section every value
// is one typed token line:
//
//   section <name>
//   u 42                     (unsigned integer, decimal)
//   i -7                     (signed integer, decimal)
//   d 3ff0000000000000       (double, exact IEEE-754 bit pattern, hex16)
//   s some text to eol       (string; no embedded newlines)
//   blob 128                 (128 raw bytes follow, then a newline)
//   end a1b2c3d4e5f60718     (FNV-1a 64 of every byte since `section`)
//
// Doubles travel as bit patterns, never as formatted decimals: restore is
// bit-exact by construction, which is what lets a resumed run reproduce the
// uninterrupted run's figure CSVs byte for byte. The per-section FNV trailer
// turns a truncated or corrupted file (the expected failure mode after a
// kill -9 mid-write, despite the tmp+rename discipline) into a loud
// std::runtime_error naming the section instead of a silently wrong resume.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace blam {

class StateWriter {
 public:
  explicit StateWriter(std::ostream& out);

  void begin_section(const std::string& name);
  /// Writes the FNV trailer and closes the current section.
  void end_section();

  void put_u64(std::uint64_t value);
  void put_i64(std::int64_t value);
  void put_double(double value);
  /// `value` must not contain newlines.
  void put_string(const std::string& value);
  /// Raw byte payload (may contain anything, including newlines).
  void put_blob(const std::string& bytes);

 private:
  void emit(const std::string& line);

  std::ostream& out_;
  std::uint64_t hash_{0};
  bool in_section_{false};
};

class StateReader {
 public:
  explicit StateReader(std::istream& in);

  /// Consumes `section <name>`; throws std::runtime_error on mismatch.
  void begin_section(const std::string& name);
  /// Consumes `end <fnv16hex>` and verifies the section hash.
  void end_section();

  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] double get_double();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::string get_blob();

 private:
  std::string next_line();
  [[nodiscard]] std::string expect(const char* tag);

  std::istream& in_;
  std::uint64_t hash_{0};
  std::string section_;
};

}  // namespace blam
