#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace blam {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : seed_{seed}, stream_{stream} {
  // Mix the stream id into the seeding sequence so distinct streams share no
  // state-prefix even for adjacent seeds.
  std::uint64_t sm = seed ^ (stream * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  for (auto& word : s_) word = splitmix64(sm);
  // A state of all zeros is the only invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  __extension__ using u128 = unsigned __int128;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  double u = 0.0;
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t salt) const {
  std::uint64_t sm = seed_ ^ rotl(stream_, 31) ^ (salt * 0xda942042e4dd58b5ULL);
  return Rng{splitmix64(sm), salt};
}

}  // namespace blam
