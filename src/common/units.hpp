// Strongly-typed physical quantities used throughout the simulator.
//
// Time is an integer count of microseconds so that event ordering is exact
// and reproducible; Power and Energy are doubles (watts / joules) wrapped in
// distinct types so that e.g. a power cannot be accidentally added to an
// energy. Cross-type arithmetic implements the physics:
//   Energy = Power * Time,  Power = Energy / Time,  Time = Energy / Power.
#pragma once

#include <cassert>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace blam {

/// Simulation time: signed 64-bit count of microseconds since simulation
/// start. Signed so that durations (differences) are representable.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time from_us(std::int64_t us) { return Time{us}; }
  [[nodiscard]] static constexpr Time from_ms(std::int64_t ms) { return Time{ms * 1000}; }
  [[nodiscard]] static constexpr Time from_seconds(double s) {
    // Round to the nearest microsecond: truncation would make airtimes like
    // 41.216 ms land on 41.215 ms.
    const double us = s * 1e6;
    return Time{static_cast<std::int64_t>(us >= 0.0 ? us + 0.5 : us - 0.5)};
  }
  [[nodiscard]] static constexpr Time from_minutes(double m) { return from_seconds(m * 60.0); }
  [[nodiscard]] static constexpr Time from_hours(double h) { return from_seconds(h * 3600.0); }
  [[nodiscard]] static constexpr Time from_days(double d) { return from_hours(d * 24.0); }

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(us_) * 1e-6; }
  [[nodiscard]] constexpr double minutes() const { return seconds() / 60.0; }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }
  [[nodiscard]] constexpr double days() const { return hours() / 24.0; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    us_ += rhs.us_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    us_ -= rhs.us_;
    return *this;
  }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.us_ + b.us_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.us_ - b.us_}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.us_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.us_ * k}; }
  // Plain-int overloads so `t * 3` is not ambiguous between the integer and
  // floating scalers.
  [[nodiscard]] friend constexpr Time operator*(Time a, int k) { return Time{a.us_ * k}; }
  [[nodiscard]] friend constexpr Time operator*(int k, Time a) { return Time{a.us_ * k}; }
  [[nodiscard]] friend constexpr std::int64_t operator/(Time a, Time b) { return a.us_ / b.us_; }
  [[nodiscard]] friend constexpr Time operator%(Time a, Time b) { return Time{a.us_ % b.us_}; }

  /// Fractional scaling, rounding to the nearest microsecond.
  [[nodiscard]] friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

/// Energy in joules.
class Energy {
 public:
  constexpr Energy() = default;
  [[nodiscard]] static constexpr Energy from_joules(double j) { return Energy{j}; }
  [[nodiscard]] static constexpr Energy from_milli_joules(double mj) { return Energy{mj * 1e-3}; }
  /// Energy of a battery given capacity in mAh at a nominal voltage.
  [[nodiscard]] static constexpr Energy from_mah(double mah, double volts) {
    return Energy{mah * 3.6 * volts};
  }
  [[nodiscard]] static constexpr Energy zero() { return Energy{0.0}; }

  [[nodiscard]] constexpr double joules() const { return j_; }
  [[nodiscard]] constexpr double milli_joules() const { return j_ * 1e3; }

  constexpr auto operator<=>(const Energy&) const = default;

  constexpr Energy& operator+=(Energy rhs) {
    j_ += rhs.j_;
    return *this;
  }
  constexpr Energy& operator-=(Energy rhs) {
    j_ -= rhs.j_;
    return *this;
  }
  [[nodiscard]] friend constexpr Energy operator+(Energy a, Energy b) { return Energy{a.j_ + b.j_}; }
  [[nodiscard]] friend constexpr Energy operator-(Energy a, Energy b) { return Energy{a.j_ - b.j_}; }
  [[nodiscard]] friend constexpr Energy operator*(Energy a, double k) { return Energy{a.j_ * k}; }
  [[nodiscard]] friend constexpr Energy operator*(double k, Energy a) { return Energy{a.j_ * k}; }
  [[nodiscard]] friend constexpr Energy operator/(Energy a, double k) { return Energy{a.j_ / k}; }
  [[nodiscard]] friend constexpr double operator/(Energy a, Energy b) { return a.j_ / b.j_; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Energy(double j) : j_{j} {}
  double j_{0.0};
};

/// Power in watts.
class Power {
 public:
  constexpr Power() = default;
  [[nodiscard]] static constexpr Power from_watts(double w) { return Power{w}; }
  [[nodiscard]] static constexpr Power from_milli_watts(double mw) { return Power{mw * 1e-3}; }
  [[nodiscard]] static constexpr Power zero() { return Power{0.0}; }

  [[nodiscard]] constexpr double watts() const { return w_; }
  [[nodiscard]] constexpr double milli_watts() const { return w_ * 1e3; }

  constexpr auto operator<=>(const Power&) const = default;

  constexpr Power& operator+=(Power rhs) {
    w_ += rhs.w_;
    return *this;
  }
  constexpr Power& operator-=(Power rhs) {
    w_ -= rhs.w_;
    return *this;
  }
  [[nodiscard]] friend constexpr Power operator+(Power a, Power b) { return Power{a.w_ + b.w_}; }
  [[nodiscard]] friend constexpr Power operator-(Power a, Power b) { return Power{a.w_ - b.w_}; }
  [[nodiscard]] friend constexpr Power operator*(Power a, double k) { return Power{a.w_ * k}; }
  [[nodiscard]] friend constexpr Power operator*(double k, Power a) { return Power{a.w_ * k}; }
  [[nodiscard]] friend constexpr double operator/(Power a, Power b) { return a.w_ / b.w_; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Power(double w) : w_{w} {}
  double w_{0.0};
};

[[nodiscard]] constexpr Energy operator*(Power p, Time t) {
  return Energy::from_joules(p.watts() * t.seconds());
}
[[nodiscard]] constexpr Energy operator*(Time t, Power p) { return p * t; }
[[nodiscard]] constexpr Power operator/(Energy e, Time t) {
  return Power::from_watts(e.joules() / t.seconds());
}
[[nodiscard]] constexpr Time operator/(Energy e, Power p) {
  return Time::from_seconds(e.joules() / p.watts());
}

/// Decibel helpers used by the PHY link-budget code.
[[nodiscard]] double db_to_linear(double db);
[[nodiscard]] double linear_to_db(double linear);
[[nodiscard]] double dbm_to_watts(double dbm);
[[nodiscard]] double watts_to_dbm(double watts);

}  // namespace blam
