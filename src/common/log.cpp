#include "common/log.hpp"

namespace blam {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

const char* Log::name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace blam
