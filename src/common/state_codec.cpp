#include "common/state_codec.hpp"

#include <bit>
#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace blam {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, const char* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xfu];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex16(const std::string& text) {
  if (text.size() != 16) throw std::runtime_error{"state codec: malformed hex16 '" + text + "'"};
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error{"state codec: malformed hex16 '" + text + "'"};
    }
  }
  return value;
}

}  // namespace

StateWriter::StateWriter(std::ostream& out) : out_{out} {}

void StateWriter::begin_section(const std::string& name) {
  if (in_section_) throw std::logic_error{"StateWriter: nested section '" + name + "'"};
  out_ << "section " << name << "\n";
  hash_ = kFnvOffset;
  in_section_ = true;
}

void StateWriter::end_section() {
  if (!in_section_) throw std::logic_error{"StateWriter: end_section outside a section"};
  out_ << "end " << hex16(hash_) << "\n";
  in_section_ = false;
}

void StateWriter::emit(const std::string& line) {
  if (!in_section_) throw std::logic_error{"StateWriter: value outside a section"};
  hash_ = fnv1a(hash_, line.data(), line.size());
  hash_ = fnv1a(hash_, "\n", 1);
  out_ << line << "\n";
}

void StateWriter::put_u64(std::uint64_t value) { emit("u " + std::to_string(value)); }

void StateWriter::put_i64(std::int64_t value) { emit("i " + std::to_string(value)); }

void StateWriter::put_double(double value) {
  emit("d " + hex16(std::bit_cast<std::uint64_t>(value)));
}

void StateWriter::put_string(const std::string& value) {
  if (value.find('\n') != std::string::npos) {
    throw std::logic_error{"StateWriter: string value contains a newline"};
  }
  emit("s " + value);
}

void StateWriter::put_blob(const std::string& bytes) {
  emit("blob " + std::to_string(bytes.size()));
  hash_ = fnv1a(hash_, bytes.data(), bytes.size());
  hash_ = fnv1a(hash_, "\n", 1);
  out_ << bytes << "\n";
}

StateReader::StateReader(std::istream& in) : in_{in} {}

std::string StateReader::next_line() {
  std::string line;
  if (!std::getline(in_, line)) {
    throw std::runtime_error{"state codec: unexpected end of checkpoint in section '" + section_ +
                             "'"};
  }
  return line;
}

void StateReader::begin_section(const std::string& name) {
  const std::string line = next_line();
  if (line != "section " + name) {
    throw std::runtime_error{"state codec: expected 'section " + name + "', got '" + line + "'"};
  }
  section_ = name;
  hash_ = kFnvOffset;
}

void StateReader::end_section() {
  const std::string line = next_line();
  if (line.rfind("end ", 0) != 0) {
    throw std::runtime_error{"state codec: expected section trailer in '" + section_ + "', got '" +
                             line + "'"};
  }
  const std::uint64_t expected = parse_hex16(line.substr(4));
  if (expected != hash_) {
    throw std::runtime_error{"state codec: checksum mismatch in section '" + section_ +
                             "' (corrupted or truncated checkpoint)"};
  }
  section_.clear();
}

std::string StateReader::expect(const char* tag) {
  const std::string line = next_line();
  hash_ = fnv1a(hash_, line.data(), line.size());
  hash_ = fnv1a(hash_, "\n", 1);
  const std::string prefix = std::string{tag} + " ";
  if (line.rfind(prefix, 0) != 0) {
    throw std::runtime_error{"state codec: expected '" + prefix + "...' in section '" + section_ +
                             "', got '" + line + "'"};
  }
  return line.substr(prefix.size());
}

std::uint64_t StateReader::get_u64() {
  const std::string text = expect("u");
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error{"state codec: malformed u64 '" + text + "'"};
  }
  return value;
}

std::int64_t StateReader::get_i64() {
  const std::string text = expect("i");
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error{"state codec: malformed i64 '" + text + "'"};
  }
  return value;
}

double StateReader::get_double() {
  return std::bit_cast<double>(parse_hex16(expect("d")));
}

std::string StateReader::get_string() { return expect("s"); }

std::string StateReader::get_blob() {
  const std::string header = expect("blob");
  std::size_t size = 0;
  const auto [ptr, ec] = std::from_chars(header.data(), header.data() + header.size(), size);
  if (ec != std::errc{} || ptr != header.data() + header.size()) {
    throw std::runtime_error{"state codec: malformed blob header '" + header + "'"};
  }
  std::string bytes(size, '\0');
  if (size > 0) in_.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!in_ || static_cast<std::size_t>(in_.gcount()) != size) {
    throw std::runtime_error{"state codec: truncated blob in section '" + section_ + "'"};
  }
  if (in_.get() != '\n') {
    throw std::runtime_error{"state codec: blob missing terminator in section '" + section_ + "'"};
  }
  hash_ = fnv1a(hash_, bytes.data(), bytes.size());
  hash_ = fnv1a(hash_, "\n", 1);
  return bytes;
}

}  // namespace blam
