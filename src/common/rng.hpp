// Deterministic random-number generation with independent per-entity streams.
//
// Every node, the channel model and the workload generator each own an
// independent Rng stream derived from a single scenario seed, so adding a node
// or reordering events never perturbs the random draws of unrelated entities.
// The generator is xoshiro256++ seeded through splitmix64, which is both fast
// and of high statistical quality.
#pragma once

#include <array>
#include <cstdint>

namespace blam {

/// splitmix64 step; used for seeding and stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// The RNG-salt registry: every stream/fork salt used anywhere in src/ lives
/// here, under a name that says which subsystem owns the derived stream.
/// One table makes collisions impossible to miss (two forks of the same
/// parent with equal salts draw identical sequences) and keeps every stream
/// derivation greppable. blam-analyze rule R1 enforces this: literal salts
/// at call sites and duplicate values in this table are errors.
namespace salt {

/// Stream id of every scenario root `Rng{seed, kRootStream}`.
inline constexpr std::uint64_t kRootStream = 0;
/// Stream id of the solar trace generator (independent of the root chain so
/// traces can be shared across scenarios with different seeds).
inline constexpr std::uint64_t kSolarTrace = 0x501a7;

// Forks of the scenario root.
inline constexpr std::uint64_t kTopology = 0x7090;
inline constexpr std::uint64_t kShadowing = 0x5ad0;
inline constexpr std::uint64_t kTraffic = 0x7aff1c;
inline constexpr std::uint64_t kFaultPlan = 0xfa17;
inline constexpr std::uint64_t kInterferer = 0xa11e4;
/// Per-node streams are `fork(kNodeStreamBase + node index)`.
inline constexpr std::uint64_t kNodeStreamBase = 0x0de;

// Forks of the per-node stream.
inline constexpr std::uint64_t kForecaster = 0x5eca57;

// Forks of the fault-plan stream (one per fault source, so the sources stay
// independent and adding one never shifts another's draws).
inline constexpr std::uint64_t kOutage = 0x007a6e;
inline constexpr std::uint64_t kAckChannel = 0xacc0;
inline constexpr std::uint64_t kCrash = 0xc4a5;
inline constexpr std::uint64_t kReportPipe = 0x5eb0;

}  // namespace salt

/// xoshiro256++ engine with convenience distributions.
class Rng {
 public:
  /// Seeds the stream from a root seed and a stream identifier. Streams with
  /// distinct (seed, stream) pairs are statistically independent.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Raw 64 uniform bits.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double normal();

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Exponential with given mean; mean must be > 0.
  [[nodiscard]] double exponential(double mean);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Derives a child stream; deterministic in (this stream's seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  /// Complete engine state, for engine checkpoints: the xoshiro words plus
  /// the Box-Muller cache. Restoring it resumes the draw sequence exactly.
  struct State {
    std::array<std::uint64_t, 4> s{};
    std::uint64_t seed{0};
    std::uint64_t stream{0};
    double cached_normal{0.0};
    bool has_cached_normal{false};
  };

  [[nodiscard]] State state() const {
    return State{s_, seed_, stream_, cached_normal_, has_cached_normal_};
  }

  void restore(const State& state) {
    s_ = state.s;
    seed_ = state.seed;
    stream_ = state.stream;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_{0};
  std::uint64_t stream_{0};
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
};

}  // namespace blam
