// On-sensor very-short-term green-energy forecaster.
//
// The paper assumes the forecaster of Kraemer et al. (locally trainable,
// 1-30 min horizon) is deployed on every node and accurate within a
// forecast window. We model that contract: the forecaster returns the true
// per-window harvest of the node's harvester, optionally corrupted by
// multiplicative Gaussian error so forecast-sensitivity studies can dial
// accuracy down.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "energy/solar.hpp"

namespace blam {

class SolarForecaster {
 public:
  /// `error_sigma` is the relative (multiplicative) forecast error standard
  /// deviation; 0 gives a perfect forecaster.
  SolarForecaster(const Harvester& harvester, double error_sigma, Rng rng);

  /// Forecast harvest for window [start + i*window, start + (i+1)*window),
  /// i in [0, n). Negative noise realizations clamp at zero.
  [[nodiscard]] std::vector<Energy> forecast(Time start, Time window, int n);

  /// Same forecasts into a caller-owned buffer (resized to n): the results
  /// and the noise-stream consumption are bit-identical to calling
  /// forecast_one per window, but the trace walks its boundaries once.
  void forecast_windows(Time start, Time window, int n, std::vector<Energy>& out);

  /// Forecast for a single interval.
  [[nodiscard]] Energy forecast_one(Time t0, Time t1);

  [[nodiscard]] double error_sigma() const { return error_sigma_; }

  /// Noise-stream state for engine checkpoints.
  [[nodiscard]] Rng::State rng_state() const { return rng_.state(); }
  void restore_rng(const Rng::State& state) { rng_.restore(state); }

 private:
  // blam-ckpt: skip -- wiring, re-attached at construction
  const Harvester* harvester_;
  // blam-ckpt: skip -- construction input (scenario forecast_error_sigma); the RNG state is serialized
  double error_sigma_;
  Rng rng_;
};

}  // namespace blam
