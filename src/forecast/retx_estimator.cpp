#include "forecast/retx_estimator.hpp"

#include <algorithm>
#include <stdexcept>

namespace blam {

RetxEstimator::RetxEstimator(std::size_t max_windows, int max_retx) : max_retx_{max_retx} {
  if (max_windows == 0) throw std::invalid_argument{"RetxEstimator: need at least one window"};
  if (max_retx < 0) throw std::invalid_argument{"RetxEstimator: max_retx must be >= 0"};
  counts_.resize(max_windows);
  for (auto& w : counts_) w.retx_counts.assign(static_cast<std::size_t>(max_retx) + 1, 0);
}

void RetxEstimator::record(std::size_t t, int retx) {
  if (t >= counts_.size()) throw std::out_of_range{"RetxEstimator::record: window out of range"};
  retx = std::clamp(retx, 0, max_retx_);
  WindowStats& w = counts_[t];
  ++w.retx_counts[static_cast<std::size_t>(retx)];
  ++w.selections;
  w.retx_sum += static_cast<std::uint64_t>(retx);
}

double RetxEstimator::probability_at_most(int r, std::size_t t) const {
  if (t >= counts_.size()) throw std::out_of_range{"RetxEstimator: window out of range"};
  if (r < 0) return 0.0;
  const WindowStats& w = counts_[t];
  if (w.selections == 0) return 1.0;
  r = std::min(r, max_retx_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= r; ++i) cumulative += w.retx_counts[static_cast<std::size_t>(i)];
  return static_cast<double>(cumulative) / static_cast<double>(w.selections);
}

double RetxEstimator::expected_transmissions(std::size_t t) const {
  if (t >= counts_.size()) throw std::out_of_range{"RetxEstimator: window out of range"};
  const WindowStats& w = counts_[t];
  if (w.selections == 0) return 1.0;
  return 1.0 + static_cast<double>(w.retx_sum) / static_cast<double>(w.selections);
}

std::uint64_t RetxEstimator::selections(std::size_t t) const {
  if (t >= counts_.size()) throw std::out_of_range{"RetxEstimator: window out of range"};
  return counts_[t].selections;
}

}  // namespace blam
