#include "forecast/solar_forecaster.hpp"

#include <algorithm>
#include <stdexcept>

namespace blam {

SolarForecaster::SolarForecaster(const Harvester& harvester, double error_sigma, Rng rng)
    : harvester_{&harvester}, error_sigma_{error_sigma}, rng_{rng} {
  if (error_sigma < 0.0) throw std::invalid_argument{"SolarForecaster: negative error sigma"};
}

std::vector<Energy> SolarForecaster::forecast(Time start, Time window, int n) {
  if (n < 0) throw std::invalid_argument{"SolarForecaster: negative window count"};
  if (window <= Time::zero()) throw std::invalid_argument{"SolarForecaster: window must be positive"};
  std::vector<Energy> result;
  result.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.push_back(forecast_one(start + window * static_cast<std::int64_t>(i),
                                  start + window * static_cast<std::int64_t>(i + 1)));
  }
  return result;
}

void SolarForecaster::forecast_windows(Time start, Time window, int n, std::vector<Energy>& out) {
  if (n < 0) throw std::invalid_argument{"SolarForecaster: negative window count"};
  if (window <= Time::zero()) throw std::invalid_argument{"SolarForecaster: window must be positive"};
  out.resize(static_cast<std::size_t>(n));
  harvester_->energy_windows(start, window, n, out.data());
  if (error_sigma_ == 0.0) return;
  for (int i = 0; i < n; ++i) {
    const double factor = std::max(0.0, 1.0 + rng_.normal(0.0, error_sigma_));
    out[static_cast<std::size_t>(i)] = out[static_cast<std::size_t>(i)] * factor;
  }
}

Energy SolarForecaster::forecast_one(Time t0, Time t1) {
  const Energy truth = harvester_->energy_between(t0, t1);
  if (error_sigma_ == 0.0) return truth;
  const double factor = std::max(0.0, 1.0 + rng_.normal(0.0, error_sigma_));
  return truth * factor;
}

}  // namespace blam
