// Ewma is header-only; this translation unit exists to give the module a
// home in the library and to anchor its vtable-free ODR.
#include "forecast/ewma.hpp"
