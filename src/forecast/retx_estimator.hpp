// Per-forecast-window retransmission estimation (paper Eq. 14).
//
// The node counts, for each forecast-window index t, how often it selected
// that window (S_t) and how many retransmissions each selection cost
// (I_{r,t}). P(r|t) is the empirical CDF of retransmission counts; the MAC
// uses the expected number of *transmissions* (1 + E[retx | t]) to scale its
// per-window energy estimate, steering nodes away from crowded windows.
#pragma once

#include <cstdint>
#include <vector>

namespace blam {

class RetxEstimator {
 public:
  /// `max_windows`: largest forecast-window index + 1 this node can use.
  /// `max_retx`: cap on counted retransmissions (LoRaWAN allows 7 after the
  /// first transmission; observations above the cap are clamped into it).
  explicit RetxEstimator(std::size_t max_windows, int max_retx = 7);

  /// Records that a packet sent in window `t` needed `retx` retransmissions.
  void record(std::size_t t, int retx);

  /// Empirical P(retransmissions <= r | window t), Eq. 14. Returns 1.0 for
  /// a window never selected (optimistic prior: assume no retransmissions).
  [[nodiscard]] double probability_at_most(int r, std::size_t t) const;

  /// Expected number of transmissions (first + retransmissions) in window
  /// `t`; 1.0 for windows with no history.
  [[nodiscard]] double expected_transmissions(std::size_t t) const;

  /// Number of times window `t` was selected (paper's S_t).
  [[nodiscard]] std::uint64_t selections(std::size_t t) const;

  [[nodiscard]] std::size_t max_windows() const { return counts_.size(); }
  [[nodiscard]] int max_retx() const { return max_retx_; }

  struct WindowStats {
    std::vector<std::uint64_t> retx_counts;  // I_{r,t}, r in [0, max_retx]
    std::uint64_t selections{0};             // S_t
    std::uint64_t retx_sum{0};
  };

  /// Raw per-window counters, for engine checkpoints.
  [[nodiscard]] const std::vector<WindowStats>& windows() const { return counts_; }
  [[nodiscard]] std::vector<WindowStats>& windows_mutable() { return counts_; }

 private:
  std::vector<WindowStats> counts_;
  // blam-ckpt: skip -- construction input (scenario timings); the per-window counters are serialized
  int max_retx_;
};

}  // namespace blam
