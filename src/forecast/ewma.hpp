// Exponentially weighted moving average (paper Eq. 13):
//   e[p] = beta * x[p-1] + (1 - beta) * e[p-1]
// where beta is the importance of the newest observation.
#pragma once

#include <stdexcept>

namespace blam {

class Ewma {
 public:
  /// `beta` in [0, 1]. The first observation initializes the estimate.
  explicit Ewma(double beta) : beta_{beta} {
    if (beta < 0.0 || beta > 1.0) throw std::invalid_argument{"Ewma: beta must be in [0,1]"};
  }

  void observe(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = beta_ * x + (1.0 - beta_) * value_;
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }

  /// Current estimate; `fallback` until the first observation.
  [[nodiscard]] double value_or(double fallback) const { return initialized_ ? value_ : fallback; }

  [[nodiscard]] double beta() const { return beta_; }

  /// Raw estimate word for engine checkpoints (value_or(0.0) conflates "no
  /// observation yet" with a genuine 0 estimate; this does not).
  [[nodiscard]] double raw_value() const { return value_; }

  void restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  // blam-ckpt: skip -- construction input (scenario ewma_beta); value and initialized are serialized
  double beta_;
  double value_{0.0};
  bool initialized_{false};
};

}  // namespace blam
