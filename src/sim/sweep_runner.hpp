// Deterministic parallel sweep engine for scenario grids.
//
// The figure binaries evaluate protocol x seed x density grids whose cells
// are mutually independent: every cell owns its Network, whose random
// streams derive from the cell's own ScenarioConfig::seed (see common/rng.hpp),
// and the only cross-cell object — a shared SolarTrace — is immutable after
// construction. SweepRunner exploits that independence: it fans cell bodies
// across a pool of worker threads pulling indices from a shared work queue,
// while each result lands in its submission-order slot. Because no cell reads
// or writes another cell's state, the aggregated output is bit-identical to
// running the same cells serially, regardless of worker count or scheduling.
//
// Thread-safety contract for cell bodies: a body may touch only (a) state it
// creates itself, (b) its own result slot, and (c) objects that are immutable
// for the duration of the sweep (e.g. a shared const SolarTrace). The
// engine provides no synchronization beyond the fork/join boundary.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace blam {

/// Worker count resolution: an explicit positive `requested` wins; otherwise
/// the BLAM_JOBS environment variable (a positive integer); otherwise
/// std::thread::hardware_concurrency() (at least 1). A malformed or
/// non-positive BLAM_JOBS falls through to the hardware default.
[[nodiscard]] int resolve_jobs(int requested = 0);

struct SweepOptions {
  /// Worker threads; 0 = BLAM_JOBS env, else hardware_concurrency.
  int jobs{0};
  /// Print one "[sweep] k/n <label> t s" line per completed cell (stderr,
  /// completion order — stdout stays clean for figure rows).
  bool progress{false};
  /// Optional cell label for progress lines, indexed by cell.
  std::function<std::string(std::size_t)> label;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Resolved worker count (>= 1).
  [[nodiscard]] int jobs() const { return jobs_; }

  /// Runs body(i) for i in [0, n). With jobs() == 1 this is a plain loop on
  /// the calling thread (the serial path); otherwise min(jobs, n) workers
  /// drain a shared index queue. If any cell throws, no further cells are
  /// started (in-flight cells finish) and after the join the exception of
  /// the lowest-index failed cell is rethrown.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Maps fn over [0, n) and returns the results in submission (index)
  /// order — bit-identical to the serial loop `for i: out[i] = fn(i)`.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(std::is_move_constructible_v<R>, "SweepRunner::map: results must be movable");
    std::vector<std::optional<R>> slots(n);
    run_indexed(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Wall-clock seconds each cell of the last run took, indexed by cell
  /// (0 for cells never started because an earlier cell failed).
  [[nodiscard]] const std::vector<double>& cell_seconds() const { return cell_seconds_; }

 private:
  int jobs_;
  bool progress_;
  std::function<std::string(std::size_t)> label_;
  std::vector<double> cell_seconds_;
};

}  // namespace blam
