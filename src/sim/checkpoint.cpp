#include "sim/checkpoint.hpp"

#include <stdexcept>

#include "fault/fault_plan.hpp"
#include "net/gateway.hpp"
#include "net/metrics.hpp"
#include "net/network_server.hpp"
#include "net/node.hpp"

namespace blam {

void write_rng(StateWriter& w, const Rng::State& state) {
  for (std::uint64_t word : state.s) w.put_u64(word);
  w.put_u64(state.seed);
  w.put_u64(state.stream);
  w.put_double(state.cached_normal);
  w.put_u64(state.has_cached_normal ? 1 : 0);
}

Rng::State read_rng(StateReader& r) {
  Rng::State state;
  for (std::uint64_t& word : state.s) word = r.get_u64();
  state.seed = r.get_u64();
  state.stream = r.get_u64();
  state.cached_normal = r.get_double();
  state.has_cached_normal = r.get_u64() != 0;
  return state;
}

void write_stats(StateWriter& w, const RunningStats& stats) {
  const RunningStats::Raw raw = stats.raw();
  w.put_u64(raw.n);
  w.put_double(raw.mean);
  w.put_double(raw.m2);
  w.put_double(raw.min);
  w.put_double(raw.max);
}

void read_stats(StateReader& r, RunningStats& stats) {
  RunningStats::Raw raw;
  raw.n = r.get_u64();
  raw.mean = r.get_double();
  raw.m2 = r.get_double();
  raw.min = r.get_double();
  raw.max = r.get_double();
  stats.restore_raw(raw);
}

void write_uplink_frame(StateWriter& w, const UplinkFrame& frame) {
  w.put_u64(frame.node_id);
  w.put_u64(frame.seq);
  w.put_i64(frame.attempt);
  write_time(w, frame.generated_at);
  w.put_i64(frame.selected_window);
  w.put_i64(frame.app_payload_bytes);
  w.put_u64(frame.soc_report.size());
  for (const SocSample& sample : frame.soc_report) {
    write_time(w, sample.t);
    w.put_double(sample.soc);
  }
  w.put_u64(frame.report_seq);
  w.put_u64(frame.report_crc);
  w.put_u64(frame.confirmed ? 1 : 0);
}

void read_uplink_frame(StateReader& r, UplinkFrame& frame) {
  frame.node_id = static_cast<std::uint32_t>(r.get_u64());
  frame.seq = static_cast<std::uint32_t>(r.get_u64());
  frame.attempt = static_cast<int>(r.get_i64());
  frame.generated_at = read_time(r);
  frame.selected_window = static_cast<int>(r.get_i64());
  frame.app_payload_bytes = static_cast<int>(r.get_i64());
  frame.soc_report.resize(r.get_u64());
  for (SocSample& sample : frame.soc_report) {
    sample.t = read_time(r);
    sample.soc = r.get_double();
  }
  frame.report_seq = static_cast<std::uint16_t>(r.get_u64());
  frame.report_crc = static_cast<std::uint8_t>(r.get_u64());
  frame.confirmed = r.get_u64() != 0;
}

void write_event(StateWriter& w, const Simulator& sim, EventHandle handle) {
  const auto pending = sim.lookup(handle);
  w.put_u64(pending.has_value() ? 1 : 0);
  if (pending.has_value()) {
    write_time(w, pending->time);
    w.put_u64(pending->seq);
  }
}

std::optional<EventQueue::PendingEvent> read_event(StateReader& r) {
  if (r.get_u64() == 0) return std::nullopt;
  EventQueue::PendingEvent event;
  event.time = read_time(r);
  event.seq = r.get_u64();
  return event;
}

namespace {

void write_gateway_metrics(StateWriter& w, const GatewayMetrics& m) {
  w.begin_section("gateway-metrics");
  w.put_u64(m.arrivals);
  w.put_u64(m.received);
  w.put_u64(m.lost_interference);
  w.put_u64(m.lost_half_duplex);
  w.put_u64(m.lost_no_demod_path);
  w.put_u64(m.lost_under_sensitivity);
  w.put_u64(m.acks_sent);
  w.put_u64(m.acks_rx2);
  w.put_u64(m.acks_unschedulable);
  w.put_u64(m.acks_undecodable);
  w.put_u64(m.duplicates);
  w.put_u64(m.lost_outage);
  w.put_u64(m.acks_lost_outage);
  w.put_u64(m.acks_lost_channel);
  w.put_u64(m.recomputes_skipped);
  w.put_u64(m.reports_dropped_fault);
  w.put_u64(m.reports_duplicated_fault);
  w.put_u64(m.reports_reordered_fault);
  w.put_u64(m.reports_corrupted_fault);
  w.put_u64(m.reports_truncated_fault);
  w.end_section();
}

void read_gateway_metrics(StateReader& r, GatewayMetrics& m) {
  r.begin_section("gateway-metrics");
  m.arrivals = r.get_u64();
  m.received = r.get_u64();
  m.lost_interference = r.get_u64();
  m.lost_half_duplex = r.get_u64();
  m.lost_no_demod_path = r.get_u64();
  m.lost_under_sensitivity = r.get_u64();
  m.acks_sent = r.get_u64();
  m.acks_rx2 = r.get_u64();
  m.acks_unschedulable = r.get_u64();
  m.acks_undecodable = r.get_u64();
  m.duplicates = r.get_u64();
  m.lost_outage = r.get_u64();
  m.acks_lost_outage = r.get_u64();
  m.acks_lost_channel = r.get_u64();
  m.recomputes_skipped = r.get_u64();
  m.reports_dropped_fault = r.get_u64();
  m.reports_duplicated_fault = r.get_u64();
  m.reports_reordered_fault = r.get_u64();
  m.reports_corrupted_fault = r.get_u64();
  m.reports_truncated_fault = r.get_u64();
  r.end_section();
}

void write_faults(StateWriter& w, const FaultPlan& faults) {
  // Only the downlink Gilbert-Elliott chains carry draw-consuming state;
  // the outage/drought schedules regenerate deterministically from
  // (config, seed) and are deliberately NOT captured.
  const auto states = faults.channel_states();
  w.begin_section("faults");
  w.put_u64(states.size());
  for (const auto& [gateway_id, state] : states) {
    w.put_i64(gateway_id);
    write_rng(w, state.rng);
    w.put_u64(state.bad ? 1 : 0);
    write_time(w, state.state_until);
  }
  w.end_section();
}

void read_faults(StateReader& r, FaultPlan& faults) {
  r.begin_section("faults");
  std::vector<std::pair<int, GilbertElliott::State>> states(r.get_u64());
  for (auto& [gateway_id, state] : states) {
    gateway_id = static_cast<int>(r.get_i64());
    state.rng = read_rng(r);
    state.bad = r.get_u64() != 0;
    state.state_until = read_time(r);
  }
  r.end_section();
  faults.restore_channel_states(states);
}

}  // namespace

void checkpoint_slice(StateWriter& w, const EngineSlice& slice) {
  w.begin_section("clock");
  write_time(w, slice.sim->now());
  w.put_u64(slice.sim->events_executed());
  w.put_u64(slice.sim->next_event_seq());
  w.end_section();

  w.begin_section("topology");
  w.put_u64(slice.gateways->size());
  w.put_u64(slice.nodes->size());
  w.put_u64(slice.faults != nullptr ? 1 : 0);
  w.end_section();

  slice.server->checkpoint_state(w);
  for (const auto& gateway : *slice.gateways) gateway->checkpoint_state(w);
  write_gateway_metrics(w, *slice.gateway_metrics);
  for (const auto& node : *slice.nodes) node->checkpoint_state(w);
  if (slice.faults != nullptr) write_faults(w, *slice.faults);
}

void restore_slice(StateReader& r, const EngineSlice& slice) {
  // Wipe the construction-time schedule first: every component then replays
  // its own pending events under their original seqs.
  slice.sim->clear_events();

  r.begin_section("clock");
  const Time now = read_time(r);
  const std::uint64_t executed = r.get_u64();
  const std::uint64_t next_seq = r.get_u64();
  r.end_section();

  r.begin_section("topology");
  if (r.get_u64() != slice.gateways->size() || r.get_u64() != slice.nodes->size() ||
      (r.get_u64() != 0) != (slice.faults != nullptr)) {
    throw std::runtime_error{"restore_slice: checkpoint topology does not match this slice"};
  }
  r.end_section();

  const auto node_by_id = [&slice](std::uint32_t id) -> Node* {
    for (const auto& node : *slice.nodes) {
      if (node->id() == id) return node.get();
    }
    throw std::runtime_error{"restore_slice: checkpoint references a node outside this slice"};
  };

  slice.server->restore_state(r, *slice.gateways, node_by_id);
  for (const auto& gateway : *slice.gateways) gateway->restore_state(r, node_by_id);
  read_gateway_metrics(r, *slice.gateway_metrics);
  for (const auto& node : *slice.nodes) node->restore_state(r);
  if (slice.faults != nullptr) read_faults(r, *slice.faults);

  // Last: the clock. Every schedule_at_seq above validated against now()==0;
  // from here the engine is positioned exactly at the checkpoint instant.
  slice.sim->restore_clock(now, executed, next_seq);
}

}  // namespace blam
