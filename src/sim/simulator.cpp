#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "audit/audit.hpp"

namespace blam {

EventHandle Simulator::schedule_at(Time at, Callback callback) {
  if (at < now_) {
    throw std::invalid_argument{"Simulator::schedule_at: time " + at.to_string() +
                                " precedes now " + now_.to_string()};
  }
  return queue_.schedule(at, std::move(callback));
}

EventHandle Simulator::schedule_in(Time delay, Callback callback) {
  if (delay < Time::zero()) {
    throw std::invalid_argument{"Simulator::schedule_in: negative delay " + delay.to_string()};
  }
  return queue_.schedule(now_ + delay, std::move(callback));
}

EventHandle Simulator::schedule_at_seq(Time at, std::uint64_t seq, Callback callback) {
  if (at < now_) {
    throw std::invalid_argument{"Simulator::schedule_at_seq: time " + at.to_string() +
                                " precedes now " + now_.to_string()};
  }
  return queue_.schedule_with_seq(at, seq, std::move(callback));
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    auto [time, callback] = queue_.pop();
    if (audit_ != nullptr) audit_->on_event_pop(now_, time);
    now_ = time;
    ++executed_;
    if (abort_ != nullptr && (executed_ & 1023u) == 0 &&
        abort_->load(std::memory_order_relaxed)) {
      throw SimulationAborted{};
    }
    callback();
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= until) {
    auto [time, callback] = queue_.pop();
    if (audit_ != nullptr) audit_->on_event_pop(now_, time);
    now_ = time;
    ++executed_;
    if (abort_ != nullptr && (executed_ & 1023u) == 0 &&
        abort_->load(std::memory_order_relaxed)) {
      throw SimulationAborted{};
    }
    callback();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, Time first, Time period, Tick tick)
    : sim_{sim}, period_{period}, tick_{std::move(tick)} {
  if (period <= Time::zero()) {
    throw std::invalid_argument{"PeriodicProcess: period must be positive"};
  }
  arm(first);
}

PeriodicProcess::~PeriodicProcess() { cancel(); }

void PeriodicProcess::cancel() {
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicProcess::arm(Time at) {
  pending_ = sim_.schedule_at(at, [this] {
    arm(sim_.now() + period_);
    tick_();
  });
}

void PeriodicProcess::restore_arm(Time at, std::uint64_t seq) {
  sim_.cancel(pending_);
  pending_ = sim_.schedule_at_seq(at, seq, [this] {
    arm(sim_.now() + period_);
    tick_();
  });
}

}  // namespace blam
