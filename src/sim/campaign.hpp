// Crash-tolerant sweep campaigns layered on SweepRunner.
//
// A campaign hardens a grid of independent cells against the three ways a
// long run dies today: a cell that hangs (per-cell watchdog + cooperative
// cancellation), a cell that throws (retry, then quarantine the config+seed
// to quarantine.json for offline repro instead of losing the grid), and the
// process being killed (an append-only checkpoint journal so a re-run skips
// completed cells and reproduces their payloads byte-identically).
//
// Identity model: each cell carries a caller-supplied `key` that fingerprints
// everything the cell's result depends on (config, seed, durations). The
// journal stores FNV-1a hashes of the key and the payload per line, so a
// journal written by a different grid (or a torn final line from a kill -9)
// is detected and ignored per-entry — resuming is safe against both.
//
// Payloads are opaque strings chosen by the caller; callers that need exact
// results round-trip them through a lossless serialization (see
// net/experiment.hpp's LifespanResult codec), which makes "fresh" and
// "resumed" cells indistinguishable down to the last bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sweep_runner.hpp"

namespace blam {

/// Thrown by CellToken::throw_if_cancelled when the watchdog fired.
class CellTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cooperative cancellation flag shared between a cell body and the
/// watchdog. Copies share the flag; a body polls cancelled() (or calls
/// throw_if_cancelled()) at its natural step boundaries.
class CellToken {
 public:
  CellToken() : flag_{std::make_shared<std::atomic<bool>>(false)} {}

  [[nodiscard]] bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  /// Throws CellTimeout if the watchdog cancelled this cell.
  void throw_if_cancelled() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct CampaignCell {
  /// Stable fingerprint of everything the result depends on; the journal's
  /// identity for this cell.
  std::string key;
  /// Progress/diagnostic label (e.g. the policy label).
  std::string label;
  std::uint64_t seed{0};
  /// Human-readable config dump written to quarantine.json for repro.
  std::string config_text;
};

struct CampaignOptions {
  SweepOptions sweep{};
  /// Watchdog: cancel a cell running longer than this (0 disables). The
  /// cancellation is cooperative — bodies observe it at step boundaries.
  double cell_timeout_s{0.0};
  /// Re-runs after a failure before the cell is quarantined.
  int retries{1};
  /// Checkpoint journal path ("" = no journal). Appended after every
  /// completed cell and read back on the next run to skip completed cells.
  std::string journal_path;
  /// Where failing cells are dumped ("" = no quarantine file). The file is
  /// removed when the campaign finishes clean, so its presence means loss.
  std::string quarantine_path{"quarantine.json"};
};

struct QuarantinedCell {
  std::string key;
  std::string label;
  std::uint64_t seed{0};
  int attempts{0};
  bool timed_out{false};
  std::string error;
  std::string config_text;
};

/// Writes `cells` as quarantine JSON (atomically: temp file + rename).
void write_quarantine(const std::string& path, const std::vector<QuarantinedCell>& cells);

/// Reads a file written by write_quarantine. Throws std::runtime_error on an
/// unreadable file or a shape it does not recognize.
[[nodiscard]] std::vector<QuarantinedCell> load_quarantine(const std::string& path);

struct CampaignReport {
  /// Payload per cell, in cell order; nullopt = quarantined.
  std::vector<std::optional<std::string>> results;
  /// Cells that failed all attempts, sorted by cell index.
  std::vector<QuarantinedCell> quarantined;
  /// Cells whose payloads were restored from the journal (bodies not run).
  std::size_t resumed{0};
};

/// Throws std::runtime_error naming every quarantined cell (and the
/// quarantine file) when the report has any; no-op otherwise. Figure
/// binaries call this so a partial grid fails loudly instead of plotting
/// holes, with the repro file left behind.
void throw_if_quarantined(const CampaignReport& report, const std::string& quarantine_path);

class Campaign {
 public:
  /// Body: compute cell `i`'s payload, polling `token` for cancellation.
  /// Exceptions (including CellTimeout) trigger retry-then-quarantine; they
  /// never abort the rest of the grid.
  using Body = std::function<std::string(std::size_t, const CellToken&)>;

  Campaign(std::vector<CampaignCell> cells, CampaignOptions options);

  /// Runs (or resumes) the grid. Journal-completed cells are returned
  /// without invoking the body; the rest fan across SweepRunner workers.
  [[nodiscard]] CampaignReport run(const Body& body);

  [[nodiscard]] const std::vector<CampaignCell>& cells() const { return cells_; }

 private:
  std::vector<CampaignCell> cells_;
  CampaignOptions options_;
};

}  // namespace blam
