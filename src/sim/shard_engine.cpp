#include "sim/shard_engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#include "audit/audit.hpp"
#include "lora/tx_timing_cache.hpp"
#include "net/scenario_io.hpp"
#include "sim/campaign.hpp"
#include "sim/checkpoint.hpp"

namespace blam {

int resolve_shards(int configured) {
  int shards = configured;
  if (const char* env = std::getenv("BLAM_SHARDS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) {
      shards = static_cast<int>(parsed);
    }
  }
  return shards;
}

double resolve_shard_timeout_s() {
  if (const char* env = std::getenv("BLAM_SHARD_TIMEOUT_S")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && *end == '\0' && parsed >= 0.0) return parsed;
  }
  return 0.0;
}

void write_wedge_quarantine(const std::string& path, const ScenarioConfig& config,
                            const std::string& report) {
  QuarantinedCell cell;
  cell.key = "sharded-run";
  cell.label = "wedged shard";
  cell.seed = config.seed;
  cell.attempts = 1;
  cell.timed_out = true;
  cell.error = report;
  cell.config_text = describe_scenario(config);
  write_quarantine(path, std::vector<QuarantinedCell>{cell});
}

Time cross_shard_lookahead(const ScenarioConfig& config, const DeploymentPlan& deployment) {
  // Which SFs are actually assigned (fixed at build time: sharded plans
  // reject ADR, the only runtime SF mutation).
  std::array<bool, 16> assigned{};
  for (const NodePlan& node : deployment.nodes) {
    assigned[static_cast<std::size_t>(node.sf)] = true;
  }
  TxTimingCache timing;
  Time min_toa{};
  bool seen = false;
  for (SpreadingFactor sf : kAllSpreadingFactors) {
    if (!assigned[static_cast<std::size_t>(sf)]) continue;
    TxParams params;
    params.sf = sf;
    params.bandwidth_hz = 125e3;
    params.payload_bytes = config.payload_bytes + 4;  // with SoC report
    params.tx_power_dbm = config.tx_power_dbm;
    params = params.with_auto_ldro();
    const Time toa = timing.time_on_air(params);
    if (!seen || toa < min_toa) min_toa = toa;
    seen = true;
  }
  return min_toa + config.timings.rx1_delay;
}

namespace {

int uf_find(std::vector<int>& parent, int g) {
  while (parent[static_cast<std::size_t>(g)] != g) {
    parent[static_cast<std::size_t>(g)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(g)])];
    g = parent[static_cast<std::size_t>(g)];
  }
  return g;
}

void uf_unite(std::vector<int>& parent, int a, int b) {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  // Deterministic representative: the lower gateway id wins.
  if (a == b) return;
  if (a < b) {
    parent[static_cast<std::size_t>(b)] = a;
  } else {
    parent[static_cast<std::size_t>(a)] = b;
  }
}

}  // namespace

ShardPlan plan_shards(const ScenarioConfig& config, const DeploymentPlan& deployment,
                      int requested) {
  ShardPlan plan;
  plan.requested = requested;
  if (requested <= 1) {
    plan.serial_reason = "shards <= 1 requested";
    return plan;
  }
  if (audit_config_from_env(config.audit).level > 0) {
    plan.serial_reason = "audit enabled (global event-order hooks)";
    return plan;
  }
  if (config.interference.tx_per_hour > 0.0) {
    plan.serial_reason = "external interferer (one global arrival process)";
    return plan;
  }
  if (config.packet_log) {
    plan.serial_reason = "packet log (global event ordering)";
    return plan;
  }
  if (config.fast_fading) {
    plan.serial_reason = "fast fading (per-gateway draws from the node stream)";
    return plan;
  }
  if (config.adr_enabled) {
    plan.serial_reason = "adr (runtime tx-power changes could re-couple domains)";
    return plan;
  }

  // Collision domains: union-find over gateways, folding every pair some
  // node reaches above the audibility floor. Those gateways share
  // interference state at TX-start time (zero lookahead), so they cannot be
  // split; gateways no node couples to both of remain independent.
  const std::size_t n_gateways = deployment.gateway_positions.size();
  std::vector<int> parent(n_gateways);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> anchor_gateway(deployment.nodes.size(), 0);
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    const NodePlan& node = deployment.nodes[i];
    int first_coupled = -1;
    int best_gateway = 0;
    double best_loss = node.losses_db.empty() ? 0.0 : node.losses_db[0];
    for (std::size_t g = 0; g < node.losses_db.size(); ++g) {
      if (node.losses_db[g] < best_loss) {
        best_loss = node.losses_db[g];
        best_gateway = static_cast<int>(g);
      }
      const double rx_dbm = config.tx_power_dbm - node.losses_db[g];
      if (rx_dbm >= config.interference_floor_dbm) {
        if (first_coupled < 0) {
          first_coupled = static_cast<int>(g);
        } else {
          uf_unite(parent, first_coupled, static_cast<int>(g));
        }
      }
    }
    // An everywhere-inaudible node still needs a home; its best gateway's
    // domain preserves serial results exactly (its uplinks are dropped under
    // the floor there just as they are everywhere).
    anchor_gateway[i] = first_coupled >= 0 ? first_coupled : best_gateway;
  }

  // Dense domain ids in ascending min-gateway-id order.
  std::vector<int> domain_of_root(n_gateways, -1);
  plan.domain_of_gateway.resize(n_gateways);
  int n_domains = 0;
  for (std::size_t g = 0; g < n_gateways; ++g) {
    const int root = uf_find(parent, static_cast<int>(g));
    if (domain_of_root[static_cast<std::size_t>(root)] < 0) {
      domain_of_root[static_cast<std::size_t>(root)] = n_domains++;
    }
    plan.domain_of_gateway[g] = domain_of_root[static_cast<std::size_t>(root)];
  }
  plan.domains = n_domains;
  plan.lookahead = cross_shard_lookahead(config, deployment);
  if (n_domains <= 1) {
    plan.serial_reason = "single collision domain";
    return plan;
  }

  // Longest-processing-time packing of domains onto shards, by node count.
  plan.effective = std::min(requested, n_domains);
  std::vector<std::uint64_t> domain_nodes(static_cast<std::size_t>(n_domains), 0);
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    const int d = plan.domain_of_gateway[static_cast<std::size_t>(anchor_gateway[i])];
    ++domain_nodes[static_cast<std::size_t>(d)];
  }
  std::vector<int> order(static_cast<std::size_t>(n_domains));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&domain_nodes](int a, int b) {
    const std::uint64_t na = domain_nodes[static_cast<std::size_t>(a)];
    const std::uint64_t nb = domain_nodes[static_cast<std::size_t>(b)];
    return na != nb ? na > nb : a < b;
  });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(plan.effective), 0);
  std::vector<int> shard_of_domain(static_cast<std::size_t>(n_domains), 0);
  for (const int d : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    shard_of_domain[static_cast<std::size_t>(d)] = static_cast<int>(lightest);
    load[lightest] += domain_nodes[static_cast<std::size_t>(d)];
  }

  plan.shard_of_gateway.resize(n_gateways);
  for (std::size_t g = 0; g < n_gateways; ++g) {
    plan.shard_of_gateway[g] =
        shard_of_domain[static_cast<std::size_t>(plan.domain_of_gateway[g])];
  }
  plan.shard_of_node.resize(deployment.nodes.size());
  for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
    plan.shard_of_node[i] = shard_of_domain[static_cast<std::size_t>(
        plan.domain_of_gateway[static_cast<std::size_t>(anchor_gateway[i])])];
  }
  plan.serial = false;
  plan.serial_reason.clear();
  return plan;
}

// --- ShardBarrier -----------------------------------------------------------

ShardBarrier::ShardBarrier(int parties, double timeout_s)
    : parties_{parties},
      timeout_s_{timeout_s},
      heartbeats_(static_cast<std::size_t>(parties)) {}

double ShardBarrier::reduce_max(double value) {
  std::unique_lock<std::mutex> lock{mutex_};
  if (poisoned_) throw ShardAborted{};
  folding_max_ = arrived_ == 0 ? value : std::max(folding_max_, value);
  if (++arrived_ == parties_) {
    result_ = folding_max_;
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return result_;
  }
  const std::uint64_t my_generation = generation_;
  const auto released = [this, my_generation] {
    return generation_ != my_generation || poisoned_;
  };
  if (timeout_s_ <= 0.0) {
    cv_.wait(lock, released);
  } else if (const auto deadline = std::chrono::steady_clock::now() +
                                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                       std::chrono::duration<double>{timeout_s_});
             !cv_.wait_until(lock, deadline, released)) {
    // wait_until returned with the predicate still false: a peer shard has
    // missed the rendezvous for a full timeout window. This waiter — exactly
    // one, since the check runs under the lock and poisoning flips the
    // predicate for everyone else — becomes the detector: it kills the
    // barrier and escapes with the diagnostics.
    poisoned_ = true;
    cv_.notify_all();
    throw ShardWedged{wedge_report()};
  }
  if (poisoned_) throw ShardAborted{};
  // Safe to read under the lock: the next round cannot complete (and
  // overwrite result_) until every waiter of this round has re-arrived.
  return result_;
}

void ShardBarrier::sync() { (void)reduce_max(0.0); }

void ShardBarrier::heartbeat(int party, const Heartbeat& hb) {
  const std::lock_guard<std::mutex> lock{mutex_};
  heartbeats_[static_cast<std::size_t>(party)] = hb;
}

void ShardBarrier::poison() {
  const std::lock_guard<std::mutex> lock{mutex_};
  poisoned_ = true;
  cv_.notify_all();
}

bool ShardBarrier::poisoned() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return poisoned_;
}

std::string ShardBarrier::wedge_report() const {
  std::uint64_t max_epoch = 0;
  for (const Heartbeat& hb : heartbeats_) max_epoch = std::max(max_epoch, hb.epoch);
  std::ostringstream out;
  out << "shard wedged: epoch barrier timed out after " << timeout_s_
      << " s; per-shard progress:";
  for (std::size_t p = 0; p < heartbeats_.size(); ++p) {
    const Heartbeat& hb = heartbeats_[p];
    out << "\n  shard " << p << ": epoch " << hb.epoch << ", queue depth " << hb.queue_depth
        << ", sim time " << static_cast<double>(hb.sim_now.us()) * 1e-6 << " s";
    if (hb.epoch < max_epoch) out << "  <-- lagging";
  }
  return out.str();
}

// --- ShardedNetwork ---------------------------------------------------------

struct ShardedNetwork::Shard {
  Simulator sim;
  ChannelPlan channels;
  DegradationModel model;
  std::unique_ptr<TemperatureModel> thermal;
  std::unique_ptr<UtilityFunction> utility;
  Metrics metrics;
  std::unique_ptr<NetworkServer> server;
  /// Full fault-plan replica built from the same 0xfa17 fork as the serial
  /// engine's: outage/drought schedules are global, and the Gilbert-Elliott /
  /// crash / report streams are pure per-gateway / per-node forks, so every
  /// shard's replica regenerates exactly the draws its entities would have
  /// consumed serially. Null when the scenario is fault-free.
  std::unique_ptr<FaultPlan> faults;
  std::vector<std::unique_ptr<Gateway>> gateways;
  /// Global ids of this shard's gateways / nodes, both ascending; local
  /// ids are the vector indices.
  std::vector<int> gateway_ids;
  std::vector<std::uint32_t> node_ids;
  std::vector<std::unique_ptr<Node>> nodes;
  double busy_seconds{0.0};

  Shard(const ScenarioConfig& config, std::size_t n_local)
      : channels{config.uplink_channels, config.downlink_channels},
        model{config.degradation},
        metrics{n_local} {}
};

/// Forwards each shard-local D_max into the epoch barrier's max-reduction;
/// one instance serves every shard (stateless beyond the barrier pointer).
class ShardedNetwork::FleetReducer final : public FleetMaxCombiner {
 public:
  explicit FleetReducer(ShardBarrier& barrier) : barrier_{&barrier} {}
  [[nodiscard]] double combine_max_degradation(double local_max) override {
    return barrier_->reduce_max(local_max);
  }

 private:
  ShardBarrier* barrier_;
};

ShardedNetwork::ShardedNetwork(const ScenarioConfig& config) : ShardedNetwork{config, nullptr} {}

namespace {

std::int64_t resolve_checkpoint_every() {
  if (const char* env = std::getenv("BLAM_CHECKPOINT_EVERY")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) return parsed;
  }
  return 0;
}

std::string resolve_checkpoint_dir() {
  if (const char* env = std::getenv("BLAM_CHECKPOINT_DIR")) {
    if (*env != '\0') return env;
  }
  return ".";
}

}  // namespace

ShardedNetwork::ShardedNetwork(const ScenarioConfig& config,
                               std::shared_ptr<const SolarTrace> trace)
    : config_{config}, merged_{static_cast<std::size_t>(config.n_nodes)} {
  config_.validate();
  checkpoint_every_ = resolve_checkpoint_every();
  checkpoint_dir_ = resolve_checkpoint_dir();
  const Rng root{config_.seed, salt::kRootStream};
  const DeploymentPlan deployment = plan_deployment(config_, root);
  plan_ = plan_shards(config_, deployment, resolve_shards(config_.shards));
  if (plan_.serial) {
    // The proven engine, end to end — even events_executed matches a plain
    // Network run (the deployment is re-planned inside, from the same root).
    network_ = std::make_unique<Network>(config_, std::move(trace));
    if (plan_.requested > 1) {
      // The caller asked for parallelism it will not get; surface the silent
      // degradation once on stderr and in the merged metrics.
      std::fprintf(stderr, "blam: %d shards requested but running serial: %s\n", plan_.requested,
                   plan_.serial_reason.c_str());
      network_->metrics().set_serial_reason(plan_.serial_reason);
    }
    return;
  }
  build_shards(deployment, std::move(trace));
}

ShardedNetwork::~ShardedNetwork() = default;

void ShardedNetwork::build_shards(const DeploymentPlan& deployment,
                                  std::shared_ptr<const SolarTrace> trace) {
  trace_ = trace != nullptr ? std::move(trace)
                            : build_deployment_trace(config_, deployment.worst_attempt_energy);
  const int n_shards = plan_.effective;
  barrier_ = std::make_unique<ShardBarrier>(n_shards, resolve_shard_timeout_s());
  reducer_ = std::make_unique<FleetReducer>(*barrier_);
  failures_.resize(static_cast<std::size_t>(n_shards));

  std::vector<std::size_t> node_count(static_cast<std::size_t>(n_shards), 0);
  for (const int s : plan_.shard_of_node) ++node_count[static_cast<std::size_t>(s)];

  ThermalConfig thermal = config_.thermal;
  if (thermal.insulated) thermal.fixed_c = config_.temperature_c;

  Gateway::Config gw;
  gw.demod_paths = config_.gateway_demod_paths;
  gw.timings = config_.timings;
  gw.downlink_tx_dbm = config_.downlink_tx_dbm;
  gw.rx1_bandwidth_hz = config_.rx1_bandwidth_hz;
  gw.interference_floor_dbm = config_.interference_floor_dbm;

  const std::size_t ingest_batch = resolve_ingest_batch(config_);
  const Rng root{config_.seed, salt::kRootStream};

  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<Shard>(config_, node_count[static_cast<std::size_t>(s)]);
    // Cooperative kill switch: lets the wedge watchdog unwind a runaway
    // event loop so the epoch join always returns.
    shard->sim.attach_abort_flag(&abort_flag_);
    shard->thermal = std::make_unique<TemperatureModel>(thermal);
    shard->utility = make_utility(config_);
    // Construction order mirrors Network::build — server first (its
    // dissemination tick is the earliest scheduled event), then gateways,
    // then nodes in ascending global id. Within a collision domain the
    // resulting event order is the serial order's projection, which is what
    // makes shard counts bit-identical.
    shard->server = std::make_unique<NetworkServer>(shard->sim, shard->model,
                                                    config_.temperature_c,
                                                    config_.dissemination_period);
    shard->server->attach_metrics(shard->metrics);
    shard->server->service().set_ingest_batch(ingest_batch);
    shard->server->service().set_fleet_combiner(reducer_.get());
    if (config_.adaptive_theta) {
      ThetaController::Config tc = config_.theta_controller;
      tc.initial = std::clamp(config_.theta, tc.theta_min, tc.theta_max);
      shard->server->enable_adaptive_theta(tc);
    }
    if (config_.faults.any()) {
      shard->faults = std::make_unique<FaultPlan>(config_.faults, root.fork(salt::kFaultPlan));
      shard->server->attach_fault_plan(shard->faults.get());
    }
    for (std::size_t g = 0; g < deployment.gateway_positions.size(); ++g) {
      if (plan_.shard_of_gateway[g] != s) continue;
      const int local_id = static_cast<int>(shard->gateways.size());
      shard->gateways.push_back(std::make_unique<Gateway>(local_id,
                                                          deployment.gateway_positions[g],
                                                          shard->sim, *shard->server,
                                                          shard->metrics, shard->channels, gw));
      shard->gateway_ids.push_back(static_cast<int>(g));
      if (shard->faults != nullptr) {
        // The Gilbert-Elliott downlink chain is keyed by the GLOBAL id.
        shard->gateways.back()->set_fault_gateway_id(static_cast<int>(g));
        shard->gateways.back()->attach_fault_plan(shard->faults.get());
      }
    }
    for (std::size_t i = 0; i < deployment.nodes.size(); ++i) {
      if (plan_.shard_of_node[i] != s) continue;
      const NodePlan& p = deployment.nodes[i];
      Node::Init init;
      init.id = static_cast<std::uint32_t>(i);
      init.position = p.position;
      init.period = p.period;
      init.sf = p.sf;
      // Shard-local link-budget vector, indexed by local gateway id.
      init.link_losses_db.reserve(shard->gateway_ids.size());
      for (const int global_gw : shard->gateway_ids) {
        init.link_losses_db.push_back(p.losses_db[static_cast<std::size_t>(global_gw)]);
      }
      init.battery_capacity = p.battery_capacity;
      init.panel_scale = p.panel_scale;
      shard->server->register_node(init.id);
      const std::size_t local = shard->nodes.size();
      shard->nodes.push_back(std::make_unique<Node>(init, config_, shard->sim, shard->gateways,
                                                    shard->channels, *trace_, shard->model,
                                                    *shard->thermal, *shard->utility,
                                                    shard->metrics.node(local),
                                                    root.fork(salt::kNodeStreamBase + i)));
      shard->node_ids.push_back(init.id);
      if (shard->faults != nullptr) shard->nodes.back()->attach_fault_plan(shard->faults.get());
      shard->nodes.back()->start();
    }
    shards_.push_back(std::move(shard));
  }
}

void ShardedNetwork::run_until(Time until) {
  if (until <= cursor_) return;
  // With checkpointing on, advance in slices that end exactly on checkpoint
  // boundaries (multiples of checkpoint_every_ dissemination epochs, in
  // absolute time), writing the rolling checkpoint file at each one. Slicing
  // is free for determinism: the workers' epoch windows already derive from
  // absolute boundary instants, so any split of [cursor_, until) replays the
  // identical epoch sequence.
  const std::int64_t cp_us =
      checkpoint_every_ > 0 ? config_.dissemination_period.us() * checkpoint_every_ : 0;
  while (cursor_ < until) {
    Time next = until;
    if (cp_us > 0) {
      const std::int64_t next_boundary = (cursor_.us() / cp_us + 1) * cp_us;
      next = std::min(until, Time::from_us(next_boundary));
    }
    if (network_ != nullptr) {
      network_->run_until(next);
    } else {
      advance(cursor_, next);
    }
    cursor_ = next;
    if (cp_us > 0 && next.us() % cp_us == 0) checkpoint_to_file(checkpoint_file_path());
  }
}

void ShardedNetwork::advance(Time start, Time until) {
  abort_flag_.store(false, std::memory_order_relaxed);
  std::fill(failures_.begin(), failures_.end(), nullptr);
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    workers.emplace_back([this, s, start, until] { worker_run(s, start, until); });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& failure : failures_) {
    if (failure == nullptr) continue;
    try {
      std::rethrow_exception(failure);
    } catch (const ShardWedged& wedged) {
      // A wedged run yields no results; leave the repro behind (same
      // protocol as a quarantined campaign cell) before propagating.
      write_wedge_quarantine("quarantine.json", config_, wedged.what());
      throw;
    }
  }
}

void ShardedNetwork::worker_run(std::size_t shard_index, Time start, Time until) {
  Shard& shard = *shards_[shard_index];
  timespec t0{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
  try {
    // Epoch boundaries at multiples of the dissemination period: the w_u
    // recompute (the only cross-shard event) fires exactly at boundary
    // instants, and its D_max all-reduce doubles as the alignment check.
    // Every shard derives the identical window sequence from (start, until),
    // so the collective-call sequences match one to one.
    const std::int64_t epoch_us = config_.dissemination_period.us();
    Time cursor = start;
    while (cursor < until) {
      const std::int64_t next_boundary = (cursor.us() / epoch_us + 1) * epoch_us;
      const Time next = std::min(until, Time::from_us(next_boundary));
      shard.sim.run_until(next);
      // Publish progress before the rendezvous: if a peer wedges, the
      // detector's report shows this shard parked at the boundary while the
      // laggard's heartbeat is still a round behind.
      ShardBarrier::Heartbeat hb;
      hb.epoch = static_cast<std::uint64_t>(next_boundary / epoch_us);
      hb.queue_depth = shard.sim.pending_events();
      hb.sim_now = shard.sim.now();
      barrier_->heartbeat(static_cast<int>(shard_index), hb);
      barrier_->sync();
      cursor = next;
    }
  } catch (const ShardAborted&) {
    // A peer shard failed; its exception carries the diagnosis.
  } catch (const SimulationAborted&) {
    // This shard's event loop was killed by the watchdog's abort flag; the
    // detector's ShardWedged carries the diagnosis.
  } catch (const ShardWedged&) {
    // This shard detected the wedge (its timed barrier wait expired). The
    // barrier is already poisoned; raise the kill switch so the shard still
    // spinning inside run_until unwinds and join() returns.
    failures_[shard_index] = std::current_exception();
    abort_flag_.store(true, std::memory_order_relaxed);
  } catch (...) {
    failures_[shard_index] = std::current_exception();
    barrier_->poison();
    abort_flag_.store(true, std::memory_order_relaxed);
  }
  timespec t1{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
  shard.busy_seconds += static_cast<double>(t1.tv_sec - t0.tv_sec) +
                        static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
}

double ShardedNetwork::max_degradation() const {
  if (network_ != nullptr) return network_->max_degradation();
  double max_deg = 0.0;
  for (const auto& shard : shards_) {
    for (const auto& node : shard->nodes) {
      max_deg = std::max(max_deg, node->degradation_now(shard->sim.now()));
    }
  }
  return max_deg;
}

void ShardedNetwork::finalize_metrics() {
  if (network_ != nullptr) {
    network_->finalize_metrics();
    return;
  }
  const std::uint64_t total_gateways = plan_.shard_of_gateway.size();
  GatewayMetrics& mg = merged_.gateway();
  LedgerCounters feedback;
  for (const auto& shard : shards_) {
    for (const auto& node : shard->nodes) node->finalize_metrics(shard->sim.now());
    shard->server->flush_report_channel();

    std::uint64_t attempts = 0;
    for (std::size_t local = 0; local < shard->node_ids.size(); ++local) {
      const NodeMetrics& row = shard->metrics.node(local);
      merged_.node(shard->node_ids[local]) = row;
      attempts += row.tx_attempts;
    }

    const GatewayMetrics& g = shard->metrics.gateway();
    mg.arrivals += g.arrivals;
    mg.received += g.received;
    mg.lost_interference += g.lost_interference;
    mg.lost_half_duplex += g.lost_half_duplex;
    mg.lost_no_demod_path += g.lost_no_demod_path;
    mg.lost_under_sensitivity += g.lost_under_sensitivity;
    mg.acks_sent += g.acks_sent;
    mg.acks_rx2 += g.acks_rx2;
    mg.acks_unschedulable += g.acks_unschedulable;
    mg.acks_undecodable += g.acks_undecodable;
    mg.duplicates += g.duplicates;
    mg.lost_outage += g.lost_outage;
    mg.acks_lost_outage += g.acks_lost_outage;
    mg.acks_lost_channel += g.acks_lost_channel;
    // Every shard's server skips the identical backhaul-down dissemination
    // instants (the outage schedule is global), while the serial engine
    // counts each skip once — so this counter is replicated, not partitioned.
    mg.recomputes_skipped = g.recomputes_skipped;
    // Report-channel fault tallies live on each shard's channel, not in the
    // per-shard gateway metrics; nodes partition across shards, so the
    // serial per-node lanes sum is exactly the per-shard channels sum.
    if (const ReportChannelCounters* rc = shard->server->report_channel_counters()) {
      mg.reports_dropped_fault += rc->dropped;
      mg.reports_duplicated_fault += rc->duplicated;
      mg.reports_reordered_fault += rc->reordered;
      mg.reports_corrupted_fault += rc->corrupted;
      mg.reports_truncated_fault += rc->truncated;
    }

    // Exact compensation for the gateways this shard never radiated to: in
    // the serial engine every attempt arrives at every gateway, and at a
    // foreign shard's gateway it would sit under the audibility floor by
    // construction — one arrival plus one lost_under_sensitivity, nothing
    // else. No other counter can differ.
    const std::uint64_t missing = total_gateways - shard->gateways.size();
    mg.arrivals += attempts * missing;
    mg.lost_under_sensitivity += attempts * missing;

    const LedgerCounters& c = shard->server->service().counters();
    feedback.reports_accepted += c.reports_accepted;
    feedback.reports_duplicate += c.reports_duplicate;
    feedback.reports_checksum_rejected += c.reports_checksum_rejected;
    feedback.reports_buffered += c.reports_buffered;
    feedback.reports_reassembled += c.reports_reassembled;
    feedback.samples_rejected_nonmonotonic += c.samples_rejected_nonmonotonic;
    feedback.samples_rejected_range += c.samples_rejected_range;
    feedback.gaps_bridged += c.gaps_bridged;
    feedback.discontinuities += c.discontinuities;
    feedback.quarantines += c.quarantines;
    feedback.recoveries += c.recoveries;
  }
  merged_.set_feedback(feedback);
  if (!shards_.empty() && shards_.front()->faults != nullptr) {
    // The outage schedule is global and every replica regenerates it
    // identically; any shard's tally is the serial value.
    Shard& front = *shards_.front();
    merged_.set_total_outage(front.faults->outage_seconds_until(front.sim.now()));
  }
}

const Metrics& ShardedNetwork::metrics() const {
  return network_ != nullptr ? network_->metrics() : merged_;
}

const SolarTrace& ShardedNetwork::solar_trace() const {
  return network_ != nullptr ? network_->solar_trace() : *trace_;
}

std::shared_ptr<const SolarTrace> ShardedNetwork::share_trace() const {
  return network_ != nullptr ? network_->share_trace() : trace_;
}

const Auditor* ShardedNetwork::auditor() const {
  return network_ != nullptr ? network_->auditor() : nullptr;
}

int ShardedNetwork::max_windows() const {
  if (network_ != nullptr) return network_->max_windows();
  int max_w = 1;
  for (const auto& shard : shards_) {
    for (const auto& node : shard->nodes) max_w = std::max(max_w, node->n_windows());
  }
  return max_w;
}

std::uint64_t ShardedNetwork::events_executed() const {
  if (network_ != nullptr) return network_->simulator().events_executed();
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.events_executed();
  return total;
}

double ShardedNetwork::w_for(std::uint32_t node_id) const {
  if (network_ != nullptr) return network_->server().w_for(node_id);
  const int s = plan_.shard_of_node.at(node_id);
  return shards_[static_cast<std::size_t>(s)]->server->w_for(node_id);
}

double ShardedNetwork::max_shard_busy_seconds() const {
  double max_busy = 0.0;
  for (const auto& shard : shards_) max_busy = std::max(max_busy, shard->busy_seconds);
  return max_busy;
}

void ShardedNetwork::checkpoint(std::ostream& out) {
  out << kCheckpointMagic << '\n';
  StateWriter w{out};
  // The meta section pins everything restore() cannot rebuild on its own:
  // the scenario identity (seed, fleet size), the engine shape (a serial
  // checkpoint cannot restore into a sharded engine or vice versa — slice
  // boundaries differ), and the resume cursor.
  w.begin_section("meta");
  w.put_u64(config_.seed);
  w.put_u64(static_cast<std::uint64_t>(config_.n_nodes));
  w.put_u64(plan_.serial ? 1 : 0);
  w.put_u64(static_cast<std::uint64_t>(plan_.effective));
  write_time(w, cursor_);
  w.end_section();
  if (network_ != nullptr) {
    network_->checkpoint_state(w);
  } else {
    for (const auto& shard : shards_) {
      EngineSlice slice;
      slice.sim = &shard->sim;
      slice.server = shard->server.get();
      slice.gateways = &shard->gateways;
      slice.nodes = &shard->nodes;
      slice.gateway_metrics = &shard->metrics.gateway();
      slice.faults = shard->faults.get();
      checkpoint_slice(w, slice);
    }
  }
}

void ShardedNetwork::restore(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  if (magic != kCheckpointMagic) {
    throw std::runtime_error{"restore: not a \"" + std::string{kCheckpointMagic} +
                             "\" checkpoint stream"};
  }
  StateReader r{in};
  r.begin_section("meta");
  if (r.get_u64() != config_.seed) {
    throw std::runtime_error{"restore: checkpoint seed does not match this scenario"};
  }
  if (r.get_u64() != static_cast<std::uint64_t>(config_.n_nodes)) {
    throw std::runtime_error{"restore: checkpoint fleet size does not match this scenario"};
  }
  if ((r.get_u64() != 0) != plan_.serial ||
      r.get_u64() != static_cast<std::uint64_t>(plan_.effective)) {
    throw std::runtime_error{
        "restore: checkpoint engine shape (serial/shard count) does not match this run"};
  }
  const Time cursor = read_time(r);
  r.end_section();
  if (network_ != nullptr) {
    network_->restore_state(r);
  } else {
    for (const auto& shard : shards_) {
      EngineSlice slice;
      slice.sim = &shard->sim;
      slice.server = shard->server.get();
      slice.gateways = &shard->gateways;
      slice.nodes = &shard->nodes;
      slice.gateway_metrics = &shard->metrics.gateway();
      slice.faults = shard->faults.get();
      restore_slice(r, slice);
    }
  }
  cursor_ = cursor;
}

std::string ShardedNetwork::checkpoint_file_path() const {
  return checkpoint_dir_ + "/blamsim.ckpt";
}

void ShardedNetwork::checkpoint_to_file(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error{"checkpoint: cannot open " + tmp};
    checkpoint(out);
    out.flush();
    if (!out) throw std::runtime_error{"checkpoint: write failed for " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error{"checkpoint: rename to " + path + " failed"};
  }
}

}  // namespace blam
