// Conservative time-windowed parallel engine: the deployment is split into
// collision-domain shards, each owning a private Simulator + EventQueue on a
// worker thread, advancing in lockstep epochs of one dissemination period and
// meeting at a barrier after every epoch.
//
// Why collision domains and not arbitrary geographic cells: the interference
// tracker couples every transmission a gateway can hear at TX START time, so
// two gateways that share even one audible node have zero lookahead between
// them — no conservative window can split them without changing results. The
// planner therefore folds gateways into domains (union-find over "some node
// reaches both above the audibility floor") and only parallelizes across
// domains, where the cross-shard lookahead is infinite for PHY traffic. The
// one remaining coupling is the daily w_u dissemination: every shard's
// DegradationService normalizes by the FLEET-wide D_max, reduced across
// shards at the epoch barrier (FleetMaxCombiner hook).
//
// Invariant (CI-enforced): shards <= 1, or any configuration the planner
// cannot split, delegates to the serial Network, and any shard count yields
// committed results bit-identical to the serial engine — per-domain event
// order is a projection of the serial order, node RNG streams are pure
// per-node forks, and the D_max all-reduce reproduces the serial fleet max.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/deployment_plan.hpp"
#include "net/network.hpp"

namespace blam {

/// BLAM_SHARDS environment override of ScenarioConfig::shards (>= 0; other
/// values, like non-numeric text, are ignored).
[[nodiscard]] int resolve_shards(int configured);

/// Minimum cross-shard propagation latency: the earliest a transmission
/// starting now could demand a response is its own time-on-air (shortest
/// frame at the fastest assigned SF) plus the RX1 turnaround. Recomputed
/// from the deployment's actual SF set — ADR is off in sharded runs, so the
/// set is fixed at build time.
[[nodiscard]] Time cross_shard_lookahead(const ScenarioConfig& config,
                                         const DeploymentPlan& deployment);

/// The shard planner's verdict for one deployment.
struct ShardPlan {
  int requested{1};
  /// Worker count actually used (min(requested, domains); 1 when serial).
  int effective{1};
  /// True when the deployment must run on the serial engine.
  bool serial{true};
  /// Human-readable reason for the serial fallback (empty when sharded).
  std::string serial_reason;
  /// Collision domains found (0 when planning was skipped).
  int domains{0};
  /// Conservative lookahead bound for the epoch length (informational: the
  /// epoch used is the dissemination period, the only cross-domain event).
  Time lookahead{};
  std::vector<int> domain_of_gateway;
  std::vector<int> shard_of_gateway;
  std::vector<int> shard_of_node;
};

/// Plans the shard decomposition. Serial fallbacks: requested <= 1, audit
/// enabled (global event-order hooks), external interference, packet log,
/// fast fading (per-gateway draws), or a single collision domain. Fault
/// injection shards fine: every shard rebuilds the full FaultPlan from the
/// same 0xfa17 fork, and each stream is already keyed by the global gateway
/// or node id, so a replica regenerates exactly the serial draws.
[[nodiscard]] ShardPlan plan_shards(const ScenarioConfig& config,
                                    const DeploymentPlan& deployment, int requested);

/// Thrown inside peer shards when one shard fails: the barrier is poisoned,
/// every blocked or arriving worker unwinds with this, and the original
/// exception is rethrown from the lowest-index failed shard.
class ShardAborted : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "shard aborted: a peer shard failed";
  }
};

/// Thrown by exactly one barrier waiter — the first whose timed wait expires
/// — when a peer shard misses the epoch rendezvous for longer than
/// BLAM_SHARD_TIMEOUT_S. Carries the stuck-shard diagnostics (per-party
/// heartbeats: epoch, queue depth, last simulated instant).
class ShardWedged : public std::runtime_error {
 public:
  explicit ShardWedged(const std::string& report) : std::runtime_error{report} {}
};

/// BLAM_SHARD_TIMEOUT_S: wedged-shard watchdog timeout in (wall-clock)
/// seconds for the epoch barrier; 0 or unset disables the watchdog.
[[nodiscard]] double resolve_shard_timeout_s();

/// Records a wedged sharded run as one PR-4 quarantine cell (timed_out =
/// true, the wedge report as the error, describe_scenario() as the repro
/// text) at `path`, atomically. Factored out so the wedge e2e test exercises
/// the exact production writer.
void write_wedge_quarantine(const std::string& path, const ScenarioConfig& config,
                            const std::string& report);

/// Rendezvous point for the epoch loop. Every shard performs the identical
/// sequence of collective calls (reduce_max inside each dissemination tick,
/// sync at each epoch end), so one generation counter serializes them all.
/// Exposed for the tsan test.
class ShardBarrier {
 public:
  /// Last-known progress of one shard, published before each epoch
  /// rendezvous; the watchdog's wedge report is composed from these.
  struct Heartbeat {
    std::uint64_t epoch{0};
    std::size_t queue_depth{0};
    Time sim_now{};
  };

  /// timeout_s <= 0 disables the watchdog (plain blocking barrier).
  // blam-lint: allow(U1) -- wall-clock watchdog seconds (steady_clock deadline), not sim time; blam::Time does not apply
  explicit ShardBarrier(int parties, double timeout_s = 0.0);

  /// Collective max-reduction: blocks until all parties contribute, returns
  /// the maximum. Throws ShardAborted once poisoned. With the watchdog
  /// armed, the first waiter whose timed wait expires poisons the barrier
  /// and throws ShardWedged carrying the per-party heartbeat report; later
  /// waiters and arrivals see the poison and throw ShardAborted.
  [[nodiscard]] double reduce_max(double value);

  /// Collective barrier with no payload. Throws ShardAborted once poisoned
  /// (or ShardWedged in the single watchdog detector).
  void sync();

  /// Publishes the shard's progress snapshot for wedge diagnostics.
  void heartbeat(int party, const Heartbeat& hb);

  /// Wakes every waiter and makes all current and future collective calls
  /// throw ShardAborted. Idempotent.
  void poison();

  [[nodiscard]] bool poisoned() const;

  [[nodiscard]] int parties() const { return parties_; }

 private:
  /// Composes the stuck-shard diagnostics from heartbeats_; mutex_ held.
  [[nodiscard]] std::string wedge_report() const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  double timeout_s_;
  std::vector<Heartbeat> heartbeats_;
  int arrived_{0};
  std::uint64_t generation_{0};
  double folding_max_{0.0};
  double result_{0.0};
  bool poisoned_{false};
};

/// Drop-in Network replacement that runs the deployment sharded when the
/// planner allows it and delegates to the serial Network otherwise. The
/// public surface mirrors the subset of Network that experiment.cpp and the
/// figure binaries consume.
class ShardedNetwork {
 public:
  explicit ShardedNetwork(const ScenarioConfig& config);
  ShardedNetwork(const ScenarioConfig& config, std::shared_ptr<const SolarTrace> trace);
  ~ShardedNetwork();

  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  /// Advances every shard to `until` in lockstep epochs (serial mode: plain
  /// Network::run_until). Safe to call repeatedly with increasing targets —
  /// campaign slicing and run_until_eol stepping work unchanged.
  void run_until(Time until);

  /// Ground-truth maximum degradation across all shards' nodes.
  [[nodiscard]] double max_degradation() const;

  /// Finalizes per-shard metrics and merges them into one fleet view: node
  /// rows keyed by global id, gateway counters field-summed plus the exact
  /// compensation for uplink copies foreign shards never saw (each would
  /// have arrived under the audibility floor: arrivals and
  /// lost_under_sensitivity grow by tx_attempts x missing-gateway-count).
  void finalize_metrics();

  [[nodiscard]] const Metrics& metrics() const;
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] bool serial() const { return plan_.serial; }
  [[nodiscard]] const SolarTrace& solar_trace() const;
  [[nodiscard]] std::shared_ptr<const SolarTrace> share_trace() const;
  [[nodiscard]] const Auditor* auditor() const;
  [[nodiscard]] int max_windows() const;
  [[nodiscard]] std::uint64_t events_executed() const;
  /// Latest disseminated w_u for a node (fleet-normalized in sharded mode).
  [[nodiscard]] double w_for(std::uint32_t node_id) const;
  /// Per-worker busy time (CPU seconds) accumulated across run_until calls;
  /// the maximum over shards is the critical path, the scalability metric
  /// the throughput bench reports on core-starved hosts.
  [[nodiscard]] double max_shard_busy_seconds() const;

  /// Serializes the full engine ("blamsim v1" stream: meta + every shard's
  /// slice, or the serial Network's single slice) at the current cursor.
  /// Call only between run_until calls, at an epoch boundary in sharded
  /// mode. Throws std::runtime_error for uncheckpointable configurations.
  void checkpoint(std::ostream& out);

  /// Restores a checkpoint written by checkpoint() into this freshly built
  /// engine (same ScenarioConfig, not yet run). Subsequent run_until calls
  /// continue bit-identically to the uninterrupted run.
  void restore(std::istream& in);

  /// checkpoint() to `path` atomically (tmp + rename), so a crash mid-write
  /// never corrupts the last good checkpoint.
  void checkpoint_to_file(const std::string& path);

 private:
  struct Shard;
  class FleetReducer;

  void build_shards(const DeploymentPlan& deployment,
                    std::shared_ptr<const SolarTrace> trace);
  void worker_run(std::size_t shard_index, Time start, Time until);
  /// One parallel lockstep advance (the body run_until slices between
  /// checkpoint boundaries).
  void advance(Time start, Time until);
  /// BLAM_CHECKPOINT_DIR/blamsim.ckpt — the rolling checkpoint file.
  [[nodiscard]] std::string checkpoint_file_path() const;

  // blam-ckpt: skip -- construction input; restore requires an engine freshly built from the same ScenarioConfig
  ScenarioConfig config_;
  // blam-ckpt: skip -- re-derived by plan_shards() from the same config and deployment at construction
  ShardPlan plan_;
  /// Serial fallback: the whole deployment on the proven engine.
  std::unique_ptr<Network> network_;
  /// Sharded state (empty in serial mode).
  // blam-ckpt: skip -- immutable once built; regenerated from (seed, solar config)
  std::shared_ptr<const SolarTrace> trace_;
  // blam-ckpt: skip -- epoch-merge machinery, rebuilt at construction
  std::unique_ptr<FleetReducer> reducer_;
  // blam-ckpt: skip -- thread coordination, rebuilt at construction
  std::unique_ptr<ShardBarrier> barrier_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // blam-ckpt: skip -- in-flight worker failures; a checkpoint is only cut at a healthy epoch barrier
  std::vector<std::exception_ptr> failures_;
  // blam-ckpt: skip -- merge output, recomputed from the per-shard metrics at the next epoch
  Metrics merged_;
  Time cursor_{};
  /// Cooperative kill switch for wedged shards: polled by every shard's
  /// event loop, raised when the watchdog fires so join() always returns.
  // blam-ckpt: skip -- watchdog latch; a resumed run starts unaborted by definition
  std::atomic<bool> abort_flag_{false};
  /// BLAM_CHECKPOINT_EVERY: dissemination epochs between rolling
  /// checkpoints (0 = off).
  // blam-ckpt: skip -- env-resolved policy (BLAM_CHECKPOINT_EVERY), re-read at construction
  std::int64_t checkpoint_every_{0};
  /// BLAM_CHECKPOINT_DIR: directory for the rolling checkpoint file.
  // blam-ckpt: skip -- env-resolved policy (BLAM_CHECKPOINT_DIR), re-read at construction
  std::string checkpoint_dir_;
};

}  // namespace blam
