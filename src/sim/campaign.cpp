#include "sim/campaign.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>

namespace blam {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Journal lines are single physical lines: payload newlines/backslashes are
/// escaped so a torn write can only damage the line it interrupted.
[[nodiscard]] std::string escape_payload(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string unescape_payload(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1] == 'n' ? '\n' : s[i + 1];
      ++i;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Tolerant journal load: returns key-hash -> payload for every intact `v1`
/// line; malformed, torn, or hash-mismatched lines are skipped (a kill -9
/// mid-append damages at most the final line).
// blam-lint: allow(D2) -- key-hash lookup table; queried by find() only, never iterated
[[nodiscard]] std::unordered_map<std::uint64_t, std::string> load_journal(
    const std::string& path) {
  // blam-lint: allow(D2) -- resumed results land in submission-order slots, not map order
  std::unordered_map<std::uint64_t, std::string> done;
  std::ifstream in{path};
  if (!in) return done;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields{line};
    std::string version, key_hex, payload_hex;
    if (!(fields >> version >> key_hex >> payload_hex) || version != "v1") continue;
    std::uint64_t key_hash = 0;
    std::uint64_t payload_hash = 0;
    try {
      key_hash = std::stoull(key_hex, nullptr, 16);
      payload_hash = std::stoull(payload_hex, nullptr, 16);
    } catch (const std::exception&) {
      continue;
    }
    std::string escaped;
    std::getline(fields, escaped);
    if (!escaped.empty() && escaped.front() == ' ') escaped.erase(0, 1);
    const std::string payload = unescape_payload(escaped);
    if (fnv1a64(payload) != payload_hash) continue;  // torn or corrupted line
    done[key_hash] = payload;
  }
  return done;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Minimal JSON scanner for the exact shape write_quarantine emits (string,
/// integer and boolean fields inside an object array). Not a general parser.
class QuarantineScanner {
 public:
  explicit QuarantineScanner(std::string text) : text_{std::move(text)} {}

  [[nodiscard]] std::vector<QuarantinedCell> parse() {
    std::vector<QuarantinedCell> cells;
    pos_ = text_.find("\"cells\"");
    if (pos_ == std::string::npos) throw std::runtime_error{"quarantine: no \"cells\" array"};
    expect('[');
    skip_ws();
    if (peek() == ']') return cells;
    for (;;) {
      cells.push_back(parse_cell());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return cells;
  }

 private:
  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error{"quarantine: truncated file"};
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void expect(char c) {
    pos_ = text_.find(c, pos_);
    if (pos_ == std::string::npos) {
      throw std::runtime_error{std::string{"quarantine: expected '"} + c + "'"};
    }
    ++pos_;
  }

  [[nodiscard]] std::string parse_string() {
    skip_ws();
    if (peek() != '"') throw std::runtime_error{"quarantine: expected string"};
    ++pos_;
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error{"quarantine: bad \\u escape"};
            const unsigned code =
                static_cast<unsigned>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            out += static_cast<char>(code);  // writer only emits codes < 0x80
            break;
          }
          default:
            out += esc;
        }
      } else {
        out += c;
      }
    }
    ++pos_;
    return out;
  }

  [[nodiscard]] QuarantinedCell parse_cell() {
    expect('{');
    QuarantinedCell cell;
    for (;;) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return cell;
      }
      const std::string field = parse_string();
      expect(':');
      skip_ws();
      if (field == "key") {
        cell.key = parse_string();
      } else if (field == "label") {
        cell.label = parse_string();
      } else if (field == "config") {
        cell.config_text = parse_string();
      } else if (field == "error") {
        cell.error = parse_string();
      } else if (field == "seed") {
        cell.seed = std::stoull(scan_scalar());
      } else if (field == "attempts") {
        cell.attempts = std::stoi(scan_scalar());
      } else if (field == "timed_out") {
        cell.timed_out = scan_scalar() == "true";
      } else {
        throw std::runtime_error{"quarantine: unknown field '" + field + "'"};
      }
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

  [[nodiscard]] std::string scan_scalar() {
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == '}' || std::isspace(static_cast<unsigned char>(c)) != 0) break;
      out += c;
      ++pos_;
    }
    return out;
  }

  std::string text_;
  std::size_t pos_{0};
};

}  // namespace

void CellToken::throw_if_cancelled() const {
  if (cancelled()) throw CellTimeout{"cell cancelled by the campaign watchdog"};
}

void write_quarantine(const std::string& path, const std::vector<QuarantinedCell>& cells) {
  std::string json = "{\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const QuarantinedCell& c = cells[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\n      \"key\": \"";
    json_escape_into(json, c.key);
    json += "\",\n      \"label\": \"";
    json_escape_into(json, c.label);
    json += "\",\n      \"seed\": " + std::to_string(c.seed);
    json += ",\n      \"attempts\": " + std::to_string(c.attempts);
    json += ",\n      \"timed_out\": ";
    json += c.timed_out ? "true" : "false";
    json += ",\n      \"error\": \"";
    json_escape_into(json, c.error);
    json += "\",\n      \"config\": \"";
    json_escape_into(json, c.config_text);
    json += "\"\n    }";
  }
  json += cells.empty() ? "]\n}\n" : "\n  ]\n}\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) throw std::runtime_error{"write_quarantine: cannot open " + tmp};
    out << json;
    out.flush();
    if (!out) throw std::runtime_error{"write_quarantine: write failed for " + tmp};
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error{"write_quarantine: cannot rename " + tmp + " -> " + path + ": " +
                             ec.message()};
  }
}

std::vector<QuarantinedCell> load_quarantine(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_quarantine: cannot open " + path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return QuarantineScanner{buffer.str()}.parse();
}

void throw_if_quarantined(const CampaignReport& report, const std::string& quarantine_path) {
  if (report.quarantined.empty()) return;
  std::string msg = "sweep campaign: " + std::to_string(report.quarantined.size()) +
                    " cell(s) quarantined";
  if (!quarantine_path.empty()) msg += " (repro dumped to " + quarantine_path + ")";
  for (const QuarantinedCell& c : report.quarantined) {
    msg += "\n  " + (c.label.empty() ? c.key : c.label) + ": " +
           (c.timed_out ? "[timeout] " : "") + c.error;
  }
  throw std::runtime_error{msg};
}

Campaign::Campaign(std::vector<CampaignCell> cells, CampaignOptions options)
    : cells_{std::move(cells)}, options_{std::move(options)} {
  if (options_.retries < 0) throw std::invalid_argument{"Campaign: retries must be >= 0"};
  if (options_.cell_timeout_s < 0.0) {
    throw std::invalid_argument{"Campaign: cell_timeout_s must be >= 0"};
  }
}

CampaignReport Campaign::run(const Body& body) {
  using Clock = std::chrono::steady_clock;
  const std::size_t n = cells_.size();
  CampaignReport report;
  report.results.resize(n);

  // --- resume: restore journal-completed cells without running them -------
  std::vector<std::size_t> todo;
  todo.reserve(n);
  if (!options_.journal_path.empty()) {
    const auto done = load_journal(options_.journal_path);
    for (std::size_t i = 0; i < n; ++i) {
      const auto it = done.find(fnv1a64(cells_[i].key));
      if (it != done.end()) {
        report.results[i] = it->second;
        ++report.resumed;
      } else {
        todo.push_back(i);
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) todo.push_back(i);
  }

  std::ofstream journal;
  std::mutex journal_mutex;
  if (!options_.journal_path.empty()) {
    const fs::path jpath{options_.journal_path};
    if (jpath.has_parent_path()) {
      std::error_code ec;
      fs::create_directories(jpath.parent_path(), ec);
    }
    journal.open(options_.journal_path, std::ios::app);
    if (!journal) {
      throw std::runtime_error{"Campaign: cannot open journal " + options_.journal_path};
    }
  }

  // --- watchdog: cancel cells that outlive the per-cell deadline ----------
  struct Watch {
    std::mutex m;
    CellToken token;
    Clock::time_point deadline;
    bool armed{false};
  };
  std::vector<Watch> watches(n);
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog;
  if (options_.cell_timeout_s > 0.0 && !todo.empty()) {
    watchdog = std::thread{[&] {
      while (!stop_watchdog.load(std::memory_order_relaxed)) {
        const Clock::time_point now = Clock::now();
        for (Watch& w : watches) {
          const std::lock_guard<std::mutex> lock{w.m};
          if (w.armed && now >= w.deadline) {
            w.token.cancel();
            w.armed = false;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
      }
    }};
  }

  std::mutex quarantine_mutex;
  const int max_attempts = 1 + options_.retries;

  SweepOptions sweep = options_.sweep;
  if (!sweep.label) {
    // Default labels by CELL index (not work-queue position), so progress
    // lines stay meaningful on a resumed grid.
    std::vector<std::string> labels;
    labels.reserve(todo.size());
    for (const std::size_t i : todo) {
      labels.push_back(cells_[i].label.empty() ? "cell " + std::to_string(i) : cells_[i].label);
    }
    sweep.label = [labels](std::size_t t) { return labels[t]; };
  } else {
    auto base = sweep.label;
    std::vector<std::size_t> map = todo;
    sweep.label = [base, map](std::size_t t) { return base(map[t]); };
  }

  SweepRunner runner{sweep};
  runner.run_indexed(todo.size(), [&](std::size_t t) {
    const std::size_t i = todo[t];
    std::string error;
    bool timed_out = false;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      CellToken token;
      Watch& watch = watches[i];
      if (options_.cell_timeout_s > 0.0) {
        const std::lock_guard<std::mutex> lock{watch.m};
        watch.token = token;
        watch.deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>{options_.cell_timeout_s});
        watch.armed = true;
      }
      try {
        std::string payload = body(i, token);
        {
          const std::lock_guard<std::mutex> lock{watch.m};
          watch.armed = false;
        }
        if (journal.is_open()) {
          const std::string line = "v1 " + hex64(fnv1a64(cells_[i].key)) + ' ' +
                                   hex64(fnv1a64(payload)) + ' ' + escape_payload(payload);
          const std::lock_guard<std::mutex> lock{journal_mutex};
          journal << line << '\n';
          journal.flush();  // a later crash must not lose this cell
        }
        report.results[i] = std::move(payload);
        return;
      } catch (const std::exception& e) {
        {
          const std::lock_guard<std::mutex> lock{watch.m};
          watch.armed = false;
        }
        error = e.what();
        timed_out = token.cancelled();
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{watch.m};
          watch.armed = false;
        }
        error = "unknown exception";
        timed_out = token.cancelled();
      }
    }
    QuarantinedCell q;
    q.key = cells_[i].key;
    q.label = cells_[i].label;
    q.seed = cells_[i].seed;
    q.attempts = max_attempts;
    q.timed_out = timed_out;
    q.error = error;
    q.config_text = cells_[i].config_text;
    const std::lock_guard<std::mutex> lock{quarantine_mutex};
    report.quarantined.push_back(std::move(q));
  });

  if (watchdog.joinable()) {
    stop_watchdog.store(true, std::memory_order_relaxed);
    watchdog.join();
  }

  // Quarantine entries land in completion order (worker-dependent); sort by
  // cell order so the file and the error report are deterministic.
  std::sort(report.quarantined.begin(), report.quarantined.end(),
            [&](const QuarantinedCell& a, const QuarantinedCell& b) {
              const auto index_of = [&](const std::string& key) {
                for (std::size_t i = 0; i < cells_.size(); ++i) {
                  if (cells_[i].key == key) return i;
                }
                return cells_.size();
              };
              return index_of(a.key) < index_of(b.key);
            });

  if (!options_.quarantine_path.empty()) {
    if (!report.quarantined.empty()) {
      write_quarantine(options_.quarantine_path, report.quarantined);
      std::fprintf(stderr, "[campaign] %zu cell(s) quarantined -> %s\n",
                   report.quarantined.size(), options_.quarantine_path.c_str());
    } else {
      std::error_code ec;
      fs::remove(options_.quarantine_path, ec);  // a stale file would read as loss
    }
  }
  return report;
}

}  // namespace blam
