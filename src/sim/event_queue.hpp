// Cancellable pending-event set for the discrete-event engine.
//
// Events live in slot storage with generation counters; the heap holds light
// (time, sequence, slot, generation) tuples. Cancellation is O(1): it bumps
// nothing in the heap, just marks the slot, and the stale heap entry is
// discarded when it reaches the top. Slots are recycled only after their heap
// entry pops, so memory stays proportional to the number of *pending* events
// even across hundreds of millions of schedule/cancel pairs.
//
// Two events at the same timestamp fire in schedule order (FIFO), which keeps
// simulations deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "sim/inline_callback.hpp"

namespace blam {

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. A default-constructed handle is "null" and safe to cancel.
struct EventHandle {
  std::uint32_t slot{kNullSlot};
  std::uint32_t generation{0};

  static constexpr std::uint32_t kNullSlot = 0xffffffffu;
  [[nodiscard]] bool is_null() const { return slot == kNullSlot; }
};

class EventQueue {
 public:
  /// Inline, move-only, non-allocating callable (48-byte capture budget,
  /// enforced at compile time); scheduling never touches the heap.
  using Callback = InlineCallback;

  /// Inserts an event; `time` must not precede the last popped time (the
  /// engine enforces this, the queue only stores).
  EventHandle schedule(Time time, Callback callback);

  /// Cancels a pending event. Returns false if the handle is null, already
  /// fired, or already cancelled; cancelling such handles is harmless.
  bool cancel(EventHandle handle);

  /// True if no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event; requires !empty().
  [[nodiscard]] Time next_time();

  /// Removes the earliest live event and returns its (time, callback).
  /// Requires !empty().
  struct Popped {
    Time time;
    Callback callback;
  };
  [[nodiscard]] Popped pop();

  /// (time, seq) of a still-pending event, or nullopt for a null, fired, or
  /// cancelled handle. Scans the heap, so it is checkpoint-path only — the
  /// hot path never pays for it.
  struct PendingEvent {
    Time time;
    std::uint64_t seq;
  };
  [[nodiscard]] std::optional<PendingEvent> lookup(EventHandle handle) const;

  /// Re-inserts an event under its ORIGINAL sequence number (checkpoint
  /// restore). Does not advance next_seq_: the restorer replays every
  /// pending event with the seq it held at checkpoint time — in any order,
  /// since the seq is explicit — then calls set_next_seq once.
  EventHandle schedule_with_seq(Time time, std::uint64_t seq, Callback callback);

  /// Drops every event (heap, slots, free list) but keeps next_seq_; all
  /// outstanding handles become invalid. Restore wipes the construction-time
  /// schedule with this before replaying the checkpointed one.
  void clear();

  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

 private:
  struct Slot {
    Callback callback;
    std::uint32_t generation{0};
    bool live{false};
  };

  struct HeapEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;

    [[nodiscard]] bool operator>(const HeapEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Drops cancelled entries from the heap top; afterwards the top is live
  /// (or the heap is empty).
  void prune_top();

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void heap_push(HeapEntry entry);
  void heap_pop();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_{0};
  std::size_t live_{0};
};

}  // namespace blam
