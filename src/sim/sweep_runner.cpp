#include "sim/sweep_runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace blam {

namespace {

[[nodiscard]] int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BLAM_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<int>(parsed);
  }
  return hardware_jobs();
}

SweepRunner::SweepRunner(SweepOptions options)
    : jobs_{resolve_jobs(options.jobs)},
      progress_{options.progress},
      label_{std::move(options.label)} {}

void SweepRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& body) {
  using Clock = std::chrono::steady_clock;
  cell_seconds_.assign(n, 0.0);
  if (n == 0) return;

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      const Clock::time_point start = Clock::now();
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      cell_seconds_[i] = std::chrono::duration<double>(Clock::now() - start).count();
      const std::size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress_) {
        const std::string name = label_ ? label_(i) : "cell " + std::to_string(i);
        const std::lock_guard<std::mutex> lock{progress_mutex};
        std::fprintf(stderr, "[sweep] %zu/%zu %s %.2f s\n", done, n, name.c_str(),
                     cell_seconds_[i]);
      }
    }
  };

  const std::size_t workers = std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    worker();  // serial degenerate path: runs on the calling thread, in order
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic error reporting: the lowest-index failure wins, whatever
  // order the workers happened to hit failures in.
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace blam
