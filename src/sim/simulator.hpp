// Discrete-event simulation engine: a clock plus a cancellable event queue.
//
// This is the NS-3-core substitute the rest of the repository runs on. The
// engine is single-threaded and deterministic: same scenario seed, same event
// trace. Callbacks may schedule and cancel further events freely, including
// at the current timestamp (they run after the current callback returns).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace blam {

class Auditor;

/// Thrown out of run()/run_until() when an attached abort flag flips: the
/// cooperative kill switch the shard watchdog uses to unwind a wedged shard
/// (a runaway event loop) without detaching its thread.
class SimulationAborted : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "simulation aborted: external abort flag set";
  }
};

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Attaches the invariant auditor (nullptr detaches): every event pop is
  /// reported for timestamp-monotonicity checking. The engine does not own
  /// the auditor; with none attached the hook is a single null test.
  void attach_auditor(Auditor* auditor) { audit_ = auditor; }

  /// Current simulation time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `callback` at absolute time `at`; `at` must be >= now().
  /// Throws std::invalid_argument on an attempt to schedule in the past.
  EventHandle schedule_at(Time at, Callback callback);

  /// Schedules `callback` after a non-negative delay.
  EventHandle schedule_in(Time delay, Callback callback);

  /// Cancels a pending event; harmless on null/fired/cancelled handles.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= `until`, then sets the clock to `until`
  /// (even if the queue drained earlier), unless stopped.
  void run_until(Time until);

  /// Requests the run loop to return after the current callback.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of currently pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Attaches a cooperative abort flag (nullptr detaches). run()/run_until()
  /// poll it every 1024 events and throw SimulationAborted once set — the
  /// shard watchdog's way to unwind a runaway shard.
  void attach_abort_flag(const std::atomic<bool>* flag) { abort_ = flag; }

  // --- Checkpoint surface (cold path; see sim/checkpoint.hpp) ---

  /// (time, seq) of a pending event, or nullopt for null/fired/cancelled
  /// handles.
  [[nodiscard]] std::optional<EventQueue::PendingEvent> lookup(EventHandle handle) const {
    return queue_.lookup(handle);
  }

  /// Drops all pending events; outstanding handles become invalid. The seq
  /// counter is preserved (restore sets it explicitly via restore_clock).
  void clear_events() { queue_.clear(); }

  /// Re-inserts an event under its checkpointed sequence number. `at` must
  /// be >= now(); restore runs at now()==0 so every future time qualifies.
  EventHandle schedule_at_seq(Time at, std::uint64_t seq, Callback callback);

  [[nodiscard]] std::uint64_t next_event_seq() const { return queue_.next_seq(); }

  /// Rewinds/advances the engine clock to a checkpointed position. Call
  /// AFTER every component has replayed its pending events (their explicit
  /// seqs are independent of the counter this sets).
  void restore_clock(Time now, std::uint64_t executed, std::uint64_t next_seq) {
    now_ = now;
    executed_ = executed;
    queue_.set_next_seq(next_seq);
  }

 private:
  EventQueue queue_;
  Time now_{Time::zero()};
  std::uint64_t executed_{0};
  // blam-ckpt: skip -- run-loop latch; every run_until() resets it before draining events
  bool stopped_{false};
  // blam-ckpt: skip -- observability wiring, re-attached at construction (audited runs refuse checkpoints)
  Auditor* audit_{nullptr};
  // blam-ckpt: skip -- shard watchdog wiring, re-attached by the owning engine
  const std::atomic<bool>* abort_{nullptr};
};

/// Repeatedly invokes a callback at a fixed period, starting at `first`.
/// The callback receives the simulator so it can reschedule-free run logic.
/// Owns its pending event; destroying the process cancels it.
class PeriodicProcess {
 public:
  // Same non-allocating callable the event queue itself uses: ticks fire on
  // the hot path, so the periodic closure lives in the 48-byte inline
  // buffer rather than behind a std::function heap cell.
  using Tick = InlineCallback;

  PeriodicProcess(Simulator& sim, Time first, Time period, Tick tick);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Stops future ticks.
  void cancel();

  [[nodiscard]] Time period() const { return period_; }

  /// Handle of the armed tick event (checkpoint path: look it up in the
  /// simulator to learn its fire time and seq).
  [[nodiscard]] EventHandle pending_handle() const { return pending_; }

  /// Re-arms the tick at a checkpointed (time, seq), replacing whatever is
  /// currently armed. The closure is identical to arm()'s, so subsequent
  /// ticks chain exactly as in the original run.
  void restore_arm(Time at, std::uint64_t seq);

 private:
  void arm(Time at);

  Simulator& sim_;
  Time period_;
  Tick tick_;
  EventHandle pending_{};
};

}  // namespace blam
