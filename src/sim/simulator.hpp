// Discrete-event simulation engine: a clock plus a cancellable event queue.
//
// This is the NS-3-core substitute the rest of the repository runs on. The
// engine is single-threaded and deterministic: same scenario seed, same event
// trace. Callbacks may schedule and cancel further events freely, including
// at the current timestamp (they run after the current callback returns).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace blam {

class Auditor;

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Attaches the invariant auditor (nullptr detaches): every event pop is
  /// reported for timestamp-monotonicity checking. The engine does not own
  /// the auditor; with none attached the hook is a single null test.
  void attach_auditor(Auditor* auditor) { audit_ = auditor; }

  /// Current simulation time. Starts at zero.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `callback` at absolute time `at`; `at` must be >= now().
  /// Throws std::invalid_argument on an attempt to schedule in the past.
  EventHandle schedule_at(Time at, Callback callback);

  /// Schedules `callback` after a non-negative delay.
  EventHandle schedule_in(Time delay, Callback callback);

  /// Cancels a pending event; harmless on null/fired/cancelled handles.
  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= `until`, then sets the clock to `until`
  /// (even if the queue drained earlier), unless stopped.
  void run_until(Time until);

  /// Requests the run loop to return after the current callback.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool stopped() const { return stopped_; }

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of currently pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_{Time::zero()};
  std::uint64_t executed_{0};
  bool stopped_{false};
  Auditor* audit_{nullptr};
};

/// Repeatedly invokes a callback at a fixed period, starting at `first`.
/// The callback receives the simulator so it can reschedule-free run logic.
/// Owns its pending event; destroying the process cancels it.
class PeriodicProcess {
 public:
  // Same non-allocating callable the event queue itself uses: ticks fire on
  // the hot path, so the periodic closure lives in the 48-byte inline
  // buffer rather than behind a std::function heap cell.
  using Tick = InlineCallback;

  PeriodicProcess(Simulator& sim, Time first, Time period, Tick tick);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Stops future ticks.
  void cancel();

  [[nodiscard]] Time period() const { return period_; }

 private:
  void arm(Time at);

  Simulator& sim_;
  Time period_;
  Tick tick_;
  EventHandle pending_{};
};

}  // namespace blam
