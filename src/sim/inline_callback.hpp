// Non-allocating replacement for std::function<void()> on the event hot
// path.
//
// Scheduling 4-6 events per node per sampling period through
// std::function means a heap allocation whenever a capture outgrows the
// implementation's small-object buffer (16 bytes in libstdc++) — the
// gateway's reception captures did exactly that on every uplink. An
// InlineCallback stores the callable in a fixed 48-byte inline buffer and
// refuses (at compile time) anything bigger, so the engine's schedule /
// fire / cancel cycle never touches the heap. Callers with genuinely large
// state park it elsewhere (a pooled slot, a member) and capture a pointer
// or an index; see net/gateway.cpp for the pattern.
//
// Move-only: the queue is the sole owner of a pending callback, and
// captured state (handles, frames) is usually not copyable anyway. Assigning
// nullptr destroys the captured state eagerly — EventQueue::cancel relies on
// that to release resources before the stale heap entry drains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace blam {

class InlineCallback {
 public:
  /// Inline capture budget. Big enough for a handful of pointers plus a
  /// small payload; small enough that the event queue's slot array stays
  /// cache-friendly.
  static constexpr std::size_t kCaptureBytes = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "callable must be invocable as void()");
    static_assert(sizeof(Fn) <= kCaptureBytes,
                  "capture exceeds the inline budget: park the state in a pooled slot "
                  "and capture an index (see net/gateway.cpp)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "captures must be nothrow-movable (the queue relocates slots)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
    if constexpr (std::is_trivially_destructible_v<Fn> &&
                  std::is_trivially_copyable_v<Fn>) {
      manage_ = nullptr;  // raw byte copy moves it; nothing to destroy
    } else {
      manage_ = [](Action action, void* self, void* other) {
        auto* fn = static_cast<Fn*>(self);
        if (action == Action::kMoveTo) {
          ::new (other) Fn(std::move(*fn));
        }
        fn->~Fn();
      };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroys the captured state (eager release; see EventQueue::cancel).
  InlineCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  enum class Action : std::uint8_t { kMoveTo, kDestroy };

  void reset() {
    if (invoke_ == nullptr) return;
    if (manage_ != nullptr) manage_(Action::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(InlineCallback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Action::kMoveTo, other.storage_, storage_);
      } else {
        __builtin_memcpy(storage_, other.storage_, kCaptureBytes);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kCaptureBytes];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Action, void*, void*) = nullptr;
};

}  // namespace blam
