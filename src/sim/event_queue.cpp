#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace blam {

EventHandle EventQueue::schedule(Time time, Callback callback) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  s.live = true;
  heap_push(HeapEntry{time, next_seq_++, slot, s.generation});
  ++live_;
  return EventHandle{slot, s.generation};
}

EventHandle EventQueue::schedule_with_seq(Time time, std::uint64_t seq, Callback callback) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  s.live = true;
  heap_push(HeapEntry{time, seq, slot, s.generation});
  ++live_;
  return EventHandle{slot, s.generation};
}

std::optional<EventQueue::PendingEvent> EventQueue::lookup(EventHandle handle) const {
  if (handle.is_null() || handle.slot >= slots_.size()) return std::nullopt;
  const Slot& s = slots_[handle.slot];
  if (!s.live || s.generation != handle.generation) return std::nullopt;
  for (const HeapEntry& entry : heap_) {
    if (entry.slot == handle.slot && entry.generation == handle.generation) {
      return PendingEvent{entry.time, entry.seq};
    }
  }
  return std::nullopt;
}

void EventQueue::clear() {
  heap_.clear();
  slots_.clear();
  free_slots_.clear();
  live_ = 0;
}

bool EventQueue::cancel(EventHandle handle) {
  if (handle.is_null() || handle.slot >= slots_.size()) return false;
  Slot& s = slots_[handle.slot];
  if (!s.live || s.generation != handle.generation) return false;
  s.live = false;
  s.callback = nullptr;  // release captured state eagerly
  assert(live_ > 0);
  --live_;
  return true;
}

Time EventQueue::next_time() {
  prune_top();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  prune_top();
  assert(!heap_.empty());
  const HeapEntry top = heap_.front();
  heap_pop();
  Slot& s = slots_[top.slot];
  Popped popped{top.time, std::move(s.callback)};
  s.callback = nullptr;
  s.live = false;
  ++s.generation;  // invalidate outstanding handles
  free_slots_.push_back(top.slot);
  assert(live_ > 0);
  --live_;
  return popped;
}

void EventQueue::prune_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& s = slots_[top.slot];
    if (s.live && s.generation == top.generation) return;
    // Stale (cancelled) entry: recycle its slot now that the heap no longer
    // references it.
    slots_[top.slot].generation++;
    free_slots_.push_back(top.slot);
    heap_pop();
  }
}

void EventQueue::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

void EventQueue::heap_pop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > entry)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry entry = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child] > heap_[child + 1]) ++child;
    if (!(entry > heap_[child])) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

}  // namespace blam
