// Engine checkpoint orchestration ("blamsim v1").
//
// A checkpoint captures ONE engine slice — a Simulator plus every component
// scheduled on it (server, gateways, nodes, fault channels, metrics) — at a
// quiescent instant: between run_until calls, when no callback is on the
// stack. The serial Network is one slice; the sharded engine is one slice
// per shard, checkpointed at a dissemination-epoch barrier where every
// shard's clock agrees.
//
// Restore is a rebuild, not a surgery: the caller constructs a FRESH network
// from the same ScenarioConfig (burning identical construction-time RNG
// draws), wipes the construction-time event schedule (Simulator::
// clear_events), and then every component restores its passive state AND
// re-schedules its own pending events under their ORIGINAL sequence numbers
// (EventQueue::schedule_with_seq). Explicit seqs make restore order
// irrelevant and reproduce the serial FIFO tie-break exactly, so a resumed
// run re-executes the identical event interleaving — figure CSVs and shard
// fingerprints match the uninterrupted run byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/state_codec.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "mac/frame.hpp"
#include "sim/simulator.hpp"

namespace blam {

class NetworkServer;
class Gateway;
class Node;
class FaultPlan;
struct GatewayMetrics;

/// First line of every engine checkpoint stream.
inline constexpr const char* kCheckpointMagic = "blamsim v1";

// --- shared token helpers (used by every component's checkpoint_state) ----

inline void write_time(StateWriter& w, Time t) { w.put_i64(t.us()); }
[[nodiscard]] inline Time read_time(StateReader& r) { return Time::from_us(r.get_i64()); }

inline void write_energy(StateWriter& w, Energy e) { w.put_double(e.joules()); }
[[nodiscard]] inline Energy read_energy(StateReader& r) {
  return Energy::from_joules(r.get_double());
}

void write_rng(StateWriter& w, const Rng::State& state);
[[nodiscard]] Rng::State read_rng(StateReader& r);

void write_stats(StateWriter& w, const RunningStats& stats);
void read_stats(StateReader& r, RunningStats& stats);

/// Shared by the gateway (in-flight receptions) and the server (aggregating
/// frames): full uplink frame including the SoC report payload.
void write_uplink_frame(StateWriter& w, const UplinkFrame& frame);
void read_uplink_frame(StateReader& r, UplinkFrame& frame);

/// Serializes one owned event handle as (present, time, seq); stale handles
/// (fired or cancelled) serialize as absent.
void write_event(StateWriter& w, const Simulator& sim, EventHandle handle);
/// Reads what write_event wrote; the owner re-schedules the event with its
/// original seq via Simulator::schedule_at_seq (or drops it on nullopt).
[[nodiscard]] std::optional<EventQueue::PendingEvent> read_event(StateReader& r);

// --- slice orchestration --------------------------------------------------

/// One engine slice: a simulator and everything scheduled on it. The serial
/// Network and each shard both describe themselves with this.
struct EngineSlice {
  Simulator* sim{nullptr};
  NetworkServer* server{nullptr};
  const std::vector<std::unique_ptr<Gateway>>* gateways{nullptr};
  const std::vector<std::unique_ptr<Node>>* nodes{nullptr};
  GatewayMetrics* gateway_metrics{nullptr};
  /// May be null (no fault injection).
  FaultPlan* faults{nullptr};
};

/// Writes the slice's complete state (clock, server, gateways, nodes, fault
/// channels, gateway counters). Must run at a quiescent instant.
void checkpoint_slice(StateWriter& w, const EngineSlice& slice);

/// Restores into a freshly built slice: wipes the construction schedule,
/// replays component state and pending events, then restores the clock.
void restore_slice(StateReader& r, const EngineSlice& slice);

}  // namespace blam
