// Streaming rainflow cycle counting over a state-of-charge trace.
//
// The paper computes N_u, delta_u (cycle discharge), phi_u (per-cycle mean
// SoC) and eta_u (cycle type) "from the battery capacity trace using the
// rainflow-counting algorithm" (Sec. II-B). A 15-year, 500-node simulation
// cannot afford to buffer whole traces, so this implementation is streaming:
//
//  * samples are first reduced to turning points (local extrema);
//  * the ASTM four-point rule closes full cycles as soon as they appear and
//    reports them to a callback (eta = 1);
//  * the unclosed residual is kept on a small stack and can be enumerated on
//    demand as half cycles (eta = 0.5) without consuming it.
//
// This makes the counter O(1) amortized per extremum with memory bounded by
// the residual depth (monotone envelope of the trace, ~tens of points).
#pragma once

#include <functional>
#include <vector>

namespace blam {

struct RainflowCycle {
  /// Cycle discharge: |max - min| SoC within the cycle (paper's delta).
  double range{0.0};
  /// Mean SoC of the cycle (paper's phi).
  double mean{0.0};
  /// Cycle type (paper's eta): 1.0 for a full cycle, 0.5 for a residual
  /// half cycle.
  double weight{1.0};
};

class RainflowCounter {
 public:
  using CycleCallback = std::function<void(const RainflowCycle&)>;

  /// `on_cycle` fires once for every FULL cycle the moment it closes.
  explicit RainflowCounter(CycleCallback on_cycle);

  /// Feeds the next SoC sample. Plateaus and monotone continuation points
  /// are absorbed; only direction changes become turning points.
  void push(double soc);

  /// Enumerates the current residual as half cycles (adjacent turning-point
  /// pairs, eta=0.5) WITHOUT consuming them — usable repeatedly for
  /// intermediate degradation queries. Includes the in-progress last sample
  /// as a provisional turning point.
  void for_each_residual(const CycleCallback& visit) const;

  /// Permanently folds the current residual into the callback (as half
  /// cycles) and restarts turning-point detection from scratch. Called on an
  /// SoC discontinuity (node crash/reboot): the trace before and after the
  /// break must not be paired into one phantom cycle, but the half cycles
  /// already observed stay counted so degradation remains monotone.
  void seal_residual();

  /// Number of full cycles closed so far.
  [[nodiscard]] std::size_t full_cycles() const { return full_cycles_; }

  /// Current residual stack depth (turning points not yet paired).
  [[nodiscard]] std::size_t residual_depth() const { return stack_.size(); }

  /// Complete streaming state (checkpoint/restore of a gateway ledger).
  /// The callback is NOT part of the state: restore() keeps the counter's
  /// own callback and only replaces the trace position.
  struct State {
    std::vector<double> stack;
    double last{0.0};
    double prev_direction{0.0};
    bool has_last{false};
    std::size_t full_cycles{0};
  };

  [[nodiscard]] State state() const;
  void restore(const State& state);

 private:
  void accept_turning_point(double value);
  void collapse();

  // blam-ckpt: skip -- callback wiring, re-bound at construction
  CycleCallback on_cycle_;
  std::vector<double> stack_;
  double last_{0.0};
  double prev_direction_{0.0};  // +1 rising, -1 falling, 0 unknown
  bool has_last_{false};
  std::size_t full_cycles_{0};
};

}  // namespace blam
