#include "degradation/model.hpp"

#include <cmath>
#include <stdexcept>

namespace blam {

DegradationModel::DegradationModel(const DegradationParams& params) : params_{params} {
  if (params.k1 < 0.0 || params.k6 < 0.0) {
    throw std::invalid_argument{"DegradationModel: aging rates must be non-negative"};
  }
  if (params.alpha_sei < 0.0 || params.alpha_sei >= 1.0) {
    throw std::invalid_argument{"DegradationModel: alpha_sei must be in [0,1)"};
  }
  if (params.eol_threshold <= 0.0 || params.eol_threshold >= 1.0) {
    throw std::invalid_argument{"DegradationModel: eol_threshold must be in (0,1)"};
  }
}

double DegradationModel::temperature_stress(double temperature_c) const {
  const double& k4 = params_.k4;
  const double& k5 = params_.k5;
  return std::exp(k4 * (temperature_c - k5) * (273.0 + k5) / (273.0 + temperature_c));
}

double DegradationModel::calendar_aging(Time age, double phi_bar, double temperature_c) const {
  if (age < Time::zero()) throw std::invalid_argument{"calendar_aging: negative age"};
  return params_.k1 * age.seconds() * std::exp(params_.k2 * (phi_bar - params_.k3)) *
         temperature_stress(temperature_c);
}

double DegradationModel::cycle_aging_term(const RainflowCycle& cycle,
                                          double temperature_c) const {
  return cycle.weight * cycle.range * cycle.mean * params_.k6 * temperature_stress(temperature_c);
}

double DegradationModel::nonlinear(double linear_sum) const {
  if (linear_sum < 0.0) linear_sum = 0.0;
  const double a = params_.alpha_sei;
  return 1.0 - a * std::exp(-params_.k_sei * linear_sum) - (1.0 - a) * std::exp(-linear_sum);
}

double DegradationModel::linear_for(double d) const {
  if (d < 0.0 || d >= 1.0) throw std::invalid_argument{"linear_for: d must be in [0,1)"};
  // Monotone in linear_sum: bisection is robust and only used offline.
  double lo = 0.0;
  double hi = 1.0;
  while (nonlinear(hi) < d) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (nonlinear(mid) < d) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace blam
