// Per-battery degradation bookkeeping: consumes the timestamped SoC trace
// (the paper's transition points Psi_u) and produces degradation on demand.
//
// Calendar aging uses the time-weighted mean SoC. The paper averages
// per-cycle mean SoCs instead; for LoRa duty cycles the battery spends
// almost all time at the level the charging policy maintains, so the two
// averages agree to within a fraction of a percent, and the time-weighted
// form is well-defined even before the first cycle closes.
//
// Cycle aging folds full cycles into a running sum the moment rainflow
// closes them; the unclosed residual is added (as half cycles) per query,
// so intermediate queries (the gateway's daily w_u computation) see a
// consistent, monotone-in-time estimate.
//
// Temperature: the paper evaluates insulated batteries at a fixed 25 C, and
// a fixed temperature is the default here. set_temperature() supports the
// outdoor (thermal-model) extension: calendar aging generalizes from
// k1 * t * S_T to k1 * INTEGRAL S_T(t) dt (identical for constant T), and
// cycles closing later use the stress in effect at close time.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "degradation/model.hpp"
#include "degradation/rainflow.hpp"

namespace blam {

class DegradationTracker {
 public:
  /// `temperature_c` is the battery's initial (or fixed) internal
  /// temperature.
  DegradationTracker(const DegradationModel& model, double temperature_c);

  DegradationTracker(const DegradationTracker&) = delete;
  DegradationTracker& operator=(const DegradationTracker&) = delete;

  /// Appends an SoC sample; `t` must be non-decreasing.
  void record(Time t, double soc);

  /// Declares an SoC discontinuity (node crash/reboot, detected gateway-side
  /// by a report-sequence reset): the rainflow residual is sealed so the
  /// trace before and after the break cannot pair into one phantom cycle.
  /// The trapezoidal SoC-time integral still bridges the break on the next
  /// record() — calendar aging over the gap is interpolated, not dropped.
  void mark_discontinuity();

  /// Discontinuities declared so far (observability).
  [[nodiscard]] std::uint64_t discontinuities() const { return discontinuities_; }

  /// Updates the battery temperature effective at time `t` (must be
  /// non-decreasing versus prior records/updates): the stress-time integral
  /// is closed at the old temperature up to `t`, then accrues at the new
  /// one.
  void set_temperature(Time t, double temperature_c);

  /// Time-weighted mean SoC so far (paper's phi_bar); current SoC if the
  /// trace is still empty.
  [[nodiscard]] double mean_soc() const;

  /// Linear calendar aging D_cal at time `now` (Eq. 1; for varying
  /// temperature the time * S_T product becomes the stress-time integral).
  [[nodiscard]] double calendar_linear(Time now) const;

  /// Linear cycle aging D_cyc including the open residual (Eq. 2).
  [[nodiscard]] double cycle_linear() const;

  /// Total non-linear degradation (Eq. 4) at time `now`.
  [[nodiscard]] double degradation(Time now) const;

  [[nodiscard]] std::size_t full_cycles() const { return rainflow_.full_cycles(); }
  [[nodiscard]] const DegradationModel& model() const { return *model_; }
  [[nodiscard]] double temperature_c() const { return temperature_c_; }

  /// Complete tracker state for gateway-ledger checkpoint/restore. The
  /// model pointer is NOT captured: restore() requires a tracker built
  /// against the same model/temperature configuration.
  struct Snapshot {
    RainflowCounter::State rainflow;
    double closed_cycle_sum{0.0};
    Time last_time{};
    double last_soc{0.0};
    bool has_sample{false};
    double soc_time_integral{0.0};
    double stress_time_integral{0.0};
    Time stress_integrated_to{};
    double temperature_c{0.0};
    std::uint64_t discontinuities{0};
  };

  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

 private:
  /// Extends the stress-time integral to `t` at the current temperature.
  void advance_stress_integral(Time t);

  const DegradationModel* model_;
  double temperature_c_;
  double temp_stress_;

  RainflowCounter rainflow_;
  double closed_cycle_sum_{0.0};  // k6- and S_T-scaled, full cycles only

  Time last_time_{Time::zero()};
  double last_soc_{0.0};
  bool has_sample_{false};
  std::uint64_t discontinuities_{0};
  double soc_time_integral_{0.0};     // integral of SoC dt (seconds)
  double stress_time_integral_{0.0};  // integral of S_T dt (seconds)
  Time stress_integrated_to_{Time::zero()};
};

}  // namespace blam
