#include "degradation/rainflow.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace blam {

RainflowCounter::RainflowCounter(CycleCallback on_cycle) : on_cycle_{std::move(on_cycle)} {
  if (!on_cycle_) throw std::invalid_argument{"RainflowCounter: callback required"};
}

void RainflowCounter::push(double soc) {
  if (!has_last_) {
    last_ = soc;
    has_last_ = true;
    return;
  }
  const double diff = soc - last_;
  if (diff == 0.0) return;  // plateau: direction unchanged
  const double direction = diff > 0.0 ? 1.0 : -1.0;
  if (prev_direction_ == 0.0) {
    // Second distinct sample: the very first sample is a turning point.
    accept_turning_point(last_);
  } else if (direction != prev_direction_) {
    // Direction change: the previous sample was a local extremum.
    accept_turning_point(last_);
  }
  prev_direction_ = direction;
  last_ = soc;
}

void RainflowCounter::accept_turning_point(double value) {
  stack_.push_back(value);
  collapse();
}

void RainflowCounter::collapse() {
  // ASTM E1049 four-point rule: with the four most recent turning points
  // X1..X4, the inner pair (X2, X3) closes a full cycle when its range is
  // no larger than both neighbours' ranges.
  while (stack_.size() >= 4) {
    const std::size_t n = stack_.size();
    const double x1 = stack_[n - 4];
    const double x2 = stack_[n - 3];
    const double x3 = stack_[n - 2];
    const double x4 = stack_[n - 1];
    const double r1 = std::abs(x2 - x1);
    const double r2 = std::abs(x3 - x2);
    const double r3 = std::abs(x4 - x3);
    if (r2 > r1 || r2 > r3) break;
    on_cycle_(RainflowCycle{r2, 0.5 * (x2 + x3), 1.0});
    ++full_cycles_;
    stack_[n - 3] = x4;  // drop X2, X3; X4 slides down
    stack_.resize(n - 2);
  }
}

void RainflowCounter::seal_residual() {
  // The residual half cycles become permanent: report them through the
  // regular callback (they carry weight 0.5, so the receiver's accumulation
  // formula needs no special case), then forget the turning points. They do
  // not count as full cycles.
  for_each_residual(on_cycle_);
  stack_.clear();
  has_last_ = false;
  prev_direction_ = 0.0;
  last_ = 0.0;
}

RainflowCounter::State RainflowCounter::state() const {
  State s;
  s.stack = stack_;
  s.last = last_;
  s.prev_direction = prev_direction_;
  s.has_last = has_last_;
  s.full_cycles = full_cycles_;
  return s;
}

void RainflowCounter::restore(const State& state) {
  stack_ = state.stack;
  last_ = state.last;
  prev_direction_ = state.prev_direction;
  has_last_ = state.has_last;
  full_cycles_ = state.full_cycles;
}

void RainflowCounter::for_each_residual(const CycleCallback& visit) const {
  // The residual is the stack plus the in-flight sample (a provisional
  // turning point: the trace currently ends there).
  const double* prev = nullptr;
  for (const double& point : stack_) {
    if (prev != nullptr) {
      visit(RainflowCycle{std::abs(point - *prev), 0.5 * (point + *prev), 0.5});
    }
    prev = &point;
  }
  if (has_last_ && prev_direction_ != 0.0) {
    if (prev != nullptr && *prev != last_) {
      visit(RainflowCycle{std::abs(last_ - *prev), 0.5 * (last_ + *prev), 0.5});
    }
  }
}

}  // namespace blam
