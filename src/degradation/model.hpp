// Battery degradation model: paper Eqs. (1)-(4), after Xu et al. 2016
// ("Modeling of lithium-ion battery degradation for cell life assessment").
//
// Degradation D in [0, 1] is the fraction of original capacity lost.
//   calendar (Eq. 1): D_cal = k1 * zeta * e^{k2 (phi_bar - k3)} * S_T
//   cycle    (Eq. 2): D_cyc = sum_i eta_i * delta_i * phi_i * k6 * S_T
//   linear   (Eq. 3): D_L = D_cal + D_cyc
//   SEI wrap (Eq. 4): D = 1 - a_sei e^{-k_sei D_L} - (1 - a_sei) e^{-D_L}
// with the shared temperature stress
//   S_T = e^{k4 (T - k5)(273 + k5) / (273 + T)},  T in deg C.
//
// Default constants are Xu et al.'s LMO cell fit; with them a battery held
// at mean SoC ~0.9 and 25 C reaches 20% fade (EoL) after ~8.2 years, and one
// held below SoC 0.5 after ~13-14 years — matching the paper's Fig. 8.
#pragma once

#include "common/units.hpp"
#include "degradation/rainflow.hpp"

namespace blam {

struct DegradationParams {
  /// Calendar aging rate per second (Xu: k_t = 4.14e-10 1/s).
  double k1{4.14e-10};
  /// SoC stress exponent (Xu: k_sigma = 1.04).
  double k2{1.04};
  /// Reference SoC (Xu: sigma_ref = 0.5).
  double k3{0.5};
  /// Temperature stress coefficient (Xu: k_T = 6.93e-2 1/K).
  double k4{6.93e-2};
  /// Reference temperature, deg C (Xu: 25 C).
  double k5{25.0};
  /// Per-cycle aging coefficient (paper's linearized DoD stress). Chosen so
  /// cycle aging stays well below calendar aging for LoRa duty cycles
  /// (paper Fig. 2) while still rewarding shallow discharges.
  double k6{2.0e-5};
  /// SEI film parameters (Xu: alpha_sei = 5.75e-2, k_sei = 121).
  double alpha_sei{5.75e-2};
  double k_sei{121.0};
  /// Degradation at which the battery is end-of-life.
  double eol_threshold{0.2};

  /// Xu et al.'s LMO cell fit — the defaults above.
  [[nodiscard]] static DegradationParams lmo() { return DegradationParams{}; }

  /// NMC-like chemistry: somewhat slower calendar aging but a steeper SoC
  /// stress and more cycle-sensitive. Illustrative literature-informed
  /// preset; the paper's protocol claims hold under any such model
  /// ("our formulation does not depend on any specific battery degradation
  /// model", Sec. III).
  [[nodiscard]] static DegradationParams nmc() {
    DegradationParams p;
    p.k1 = 3.0e-10;
    p.k2 = 1.3;
    p.k6 = 4.0e-5;
    return p;
  }

  /// LFP-like chemistry: very cycle-tolerant and slow calendar aging with a
  /// flatter SoC stress.
  [[nodiscard]] static DegradationParams lfp() {
    DegradationParams p;
    p.k1 = 1.6e-10;
    p.k2 = 0.8;
    p.k6 = 1.0e-5;
    return p;
  }
};

class DegradationModel {
 public:
  explicit DegradationModel(const DegradationParams& params = {});

  [[nodiscard]] const DegradationParams& params() const { return params_; }

  /// Shared temperature stress S_T at `temperature_c`.
  [[nodiscard]] double temperature_stress(double temperature_c) const;

  /// Eq. (1): calendar aging for `age` elapsed, mean SoC `phi_bar`, at
  /// `temperature_c`.
  [[nodiscard]] double calendar_aging(Time age, double phi_bar, double temperature_c) const;

  /// Eq. (2) single-cycle term: eta * delta * phi * k6 * S_T.
  [[nodiscard]] double cycle_aging_term(const RainflowCycle& cycle, double temperature_c) const;

  /// Eq. (4): non-linear (SEI) degradation from the linear sum D_L.
  [[nodiscard]] double nonlinear(double linear_sum) const;

  /// Inverse of Eq. (4): the linear sum that produces degradation `d`.
  /// Used to predict lifespans analytically in tests and the oracle.
  [[nodiscard]] double linear_for(double d) const;

 private:
  // blam-ckpt: skip -- model constants; rebuilt from ScenarioConfig::degradation
  DegradationParams params_;
};

}  // namespace blam
