#include "degradation/tracker.hpp"

#include <cmath>
#include <stdexcept>

namespace blam {

DegradationTracker::DegradationTracker(const DegradationModel& model, double temperature_c)
    : model_{&model},
      temperature_c_{temperature_c},
      temp_stress_{model.temperature_stress(temperature_c)},
      rainflow_{[this](const RainflowCycle& cycle) {
        // Inline cycle_aging_term with the cached temperature stress: this
        // fires for every closed cycle on the simulation hot path.
        closed_cycle_sum_ += cycle.weight * cycle.range * cycle.mean * model_->params().k6 * temp_stress_;
      }} {}

void DegradationTracker::advance_stress_integral(Time t) {
  if (t <= stress_integrated_to_) return;
  stress_time_integral_ += temp_stress_ * (t - stress_integrated_to_).seconds();
  stress_integrated_to_ = t;
}

void DegradationTracker::set_temperature(Time t, double temperature_c) {
  if (t < stress_integrated_to_) {
    throw std::invalid_argument{"DegradationTracker::set_temperature: time went backwards"};
  }
  advance_stress_integral(t);  // close the integral at the old stress
  temperature_c_ = temperature_c;
  temp_stress_ = model_->temperature_stress(temperature_c);
}

void DegradationTracker::record(Time t, double soc) {
  if (has_sample_) {
    if (t < last_time_) throw std::invalid_argument{"DegradationTracker: time went backwards"};
    // Trapezoidal SoC-time integral: SoC ramps (dis)charge roughly linearly
    // between transition points.
    soc_time_integral_ += 0.5 * (last_soc_ + soc) * (t - last_time_).seconds();
  }
  advance_stress_integral(t);
  rainflow_.push(soc);
  last_time_ = t;
  last_soc_ = soc;
  has_sample_ = true;
}

void DegradationTracker::mark_discontinuity() {
  if (!has_sample_) return;
  rainflow_.seal_residual();
  ++discontinuities_;
}

DegradationTracker::Snapshot DegradationTracker::snapshot() const {
  Snapshot s;
  s.rainflow = rainflow_.state();
  s.closed_cycle_sum = closed_cycle_sum_;
  s.last_time = last_time_;
  s.last_soc = last_soc_;
  s.has_sample = has_sample_;
  s.soc_time_integral = soc_time_integral_;
  s.stress_time_integral = stress_time_integral_;
  s.stress_integrated_to = stress_integrated_to_;
  s.temperature_c = temperature_c_;
  s.discontinuities = discontinuities_;
  return s;
}

void DegradationTracker::restore(const Snapshot& snapshot) {
  rainflow_.restore(snapshot.rainflow);
  closed_cycle_sum_ = snapshot.closed_cycle_sum;
  last_time_ = snapshot.last_time;
  last_soc_ = snapshot.last_soc;
  has_sample_ = snapshot.has_sample;
  soc_time_integral_ = snapshot.soc_time_integral;
  stress_time_integral_ = snapshot.stress_time_integral;
  stress_integrated_to_ = snapshot.stress_integrated_to;
  temperature_c_ = snapshot.temperature_c;
  temp_stress_ = model_->temperature_stress(snapshot.temperature_c);
  discontinuities_ = snapshot.discontinuities;
}

double DegradationTracker::mean_soc() const {
  if (!has_sample_) return 0.0;
  const double elapsed = last_time_.seconds();
  if (elapsed <= 0.0) return last_soc_;
  return soc_time_integral_ / elapsed;
}

double DegradationTracker::calendar_linear(Time now) const {
  if (!has_sample_) return 0.0;
  // phi_bar over the observed trace; the battery existed from time zero.
  double integral = soc_time_integral_;
  const double elapsed = now.seconds();
  if (now > last_time_) integral += last_soc_ * (now - last_time_).seconds();
  if (elapsed <= 0.0) return 0.0;
  const double phi_bar = integral / elapsed;

  // Stress-time integral extended virtually to `now` at the current stress.
  double stress_integral = stress_time_integral_;
  if (now > stress_integrated_to_) {
    stress_integral += temp_stress_ * (now - stress_integrated_to_).seconds();
  }
  const DegradationParams& p = model_->params();
  return p.k1 * stress_integral * std::exp(p.k2 * (phi_bar - p.k3));
}

double DegradationTracker::cycle_linear() const {
  double sum = closed_cycle_sum_;
  rainflow_.for_each_residual([this, &sum](const RainflowCycle& cycle) {
    sum += cycle.weight * cycle.range * cycle.mean * model_->params().k6 * temp_stress_;
  });
  return sum;
}

double DegradationTracker::degradation(Time now) const {
  return model_->nonlinear(calendar_linear(now) + cycle_linear());
}

}  // namespace blam
