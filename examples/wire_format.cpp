// Wire-format demo: encode one BLAM uplink and its ACK to bytes, hex-dump
// them, decode them back, and show the byte-level overhead the paper claims
// (Sec. III-B: +4 bytes of SoC report per uplink, +1 byte of w_u per ACK).
#include <cstdio>

#include "lora/airtime.hpp"
#include "mac/codec.hpp"

namespace {

void hexdump(const char* label, const std::vector<std::uint8_t>& bytes) {
  std::printf("%-28s (%2zu B):", label, bytes.size());
  for (std::uint8_t b : bytes) std::printf(" %02x", b);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace blam;

  UplinkFrame frame;
  frame.node_id = 0x01020304;
  frame.seq = 42;
  frame.attempt = 1;
  frame.selected_window = 3;
  frame.app_payload_bytes = 10;
  frame.confirmed = true;
  // The paper's two transition points: SoC at the period start (last
  // recharge level) and right after the transmission (discharge level).
  frame.soc_report.push_back({Time::from_minutes(600.0), 0.47});
  frame.soc_report.push_back({Time::from_minutes(604.0), 0.43});

  UplinkFrame bare = frame;
  bare.soc_report.clear();

  const auto with_report = encode_uplink(frame);
  const auto without = encode_uplink(bare);
  hexdump("uplink with SoC report", with_report);
  hexdump("uplink without", without);
  std::printf("-> report overhead: %zu bytes (paper: +4)\n\n",
              with_report.size() - without.size());

  AckFrame ack;
  ack.node_id = frame.node_id;
  ack.seq = frame.seq;
  ack.has_degradation = true;
  ack.normalized_degradation = 0.8;
  AckFrame bare_ack = ack;
  bare_ack.has_degradation = false;
  const auto ack_bytes = encode_ack(ack);
  hexdump("ACK with w_u", ack_bytes);
  hexdump("ACK without", encode_ack(bare_ack));
  std::printf("-> dissemination overhead: %zu byte (paper: +1)\n\n",
              ack_bytes.size() - encode_ack(bare_ack).size());

  // Round trip.
  const UplinkFrame decoded = decode_uplink(with_report, frame.soc_report.back().t);
  std::printf("decoded uplink: node %08x seq %u attempt %d window %d, %zu SoC samples "
              "(%.3f, %.3f)\n",
              decoded.node_id, decoded.seq, decoded.attempt, decoded.selected_window,
              decoded.soc_report.size(), decoded.soc_report[0].soc, decoded.soc_report[1].soc);
  const AckFrame ack_decoded = decode_ack(ack_bytes);
  std::printf("decoded ACK: node %08x seq %u w_u %.3f\n\n", ack_decoded.node_id, ack_decoded.seq,
              ack_decoded.normalized_degradation);

  // Airtime cost of the report at the testbed configuration (paper: ~41 ms
  // extra at SF10 / 125 kHz).
  TxParams params;
  params.sf = SpreadingFactor::kSF10;
  params = params.with_auto_ldro();
  params.payload_bytes = frame.total_bytes();
  const Time with_t = time_on_air(params);
  params.payload_bytes = bare.total_bytes();
  const Time without_t = time_on_air(params);
  std::printf("airtime at SF10/125kHz: %s with report vs %s without (+%.0f ms)\n",
              with_t.to_string().c_str(), without_t.to_string().c_str(),
              (with_t - without_t).seconds() * 1e3);
  // LoRa payload symbols come in whole FEC blocks (5 symbols at CR 4/5 =
  // 41 ms at SF10): with a 10-byte app payload the 4 report bytes happen to
  // fit in the current block for free; one byte more and they cost exactly
  // the paper's 41 ms.
  params.payload_bytes = bare.total_bytes() + 5;
  const Time crossed = time_on_air(params);
  params.payload_bytes = bare.total_bytes() + 1;
  std::printf("block quantization: +5 B costs %+.0f ms over +1 B (the paper's ~41 ms block)\n",
              (crossed - time_on_air(params)).seconds() * 1e3);
  return 0;
}
