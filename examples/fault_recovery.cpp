// Fault recovery walkthrough: a small BLAM network hit by a daily gateway
// outage, a two-day solar drought and occasional node crashes, with the
// graceful-degradation extensions switched on (stale-feedback ramp +
// ACK-failure backoff). Prints a per-day timeline showing delivery collapse
// and recovery, then the recovery observability metrics.
//
//   $ ./fault_recovery [nodes] [seed]
#include <cstdio>
#include <cstdlib>

#include "net/network.hpp"

int main(int argc, char** argv) {
  using namespace blam;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  ScenarioConfig c = blam_scenario(nodes, 0.5, seed);
  c.battery_days = 1.0;  // paper sizing: one day of autonomy
  // Resilience knobs under test.
  c.stale_feedback_k = 3.0;
  c.ack_failure_backoff = true;
  // Faults: gateway dark 09:00-15:00 every day, a drought over days 4-6
  // with 10% of normal harvest, and roughly one crash per node-month.
  c.faults.outage_daily_start = Time::from_hours(9.0);
  c.faults.outage_daily_duration = Time::from_hours(6.0);
  c.faults.drought_start = Time::from_days(4.0);
  c.faults.drought_duration = Time::from_days(2.0);
  c.faults.drought_scale = 0.1;
  c.faults.crash_per_year = 12.0;

  std::printf("fault recovery demo: %d nodes, seed %llu\n", nodes,
              static_cast<unsigned long long>(seed));
  std::printf("faults: outage 09:00-15:00 daily, drought days 4-6 at 10%%, "
              "~1 crash per node-month\n");
  std::printf("resilience: stale_feedback_k=3, ack_failure_backoff=on\n\n");

  Network network{c};
  std::printf("%4s %10s %10s %10s %10s %9s\n", "day", "generated", "delivered", "lost_out",
              "brownouts", "crashes");

  struct Snapshot {
    std::uint64_t generated{0}, delivered{0}, lost{0}, brownouts{0}, crashes{0};
  };
  // 12 days: the drought ends on day 6 and (with this weather seed) an
  // overcast stretch follows around days 8-10, so the tail shows the
  // network climbing back to its pre-fault delivery rate.
  Snapshot prev;
  const int total_days = 12;
  for (int day = 1; day <= total_days; ++day) {
    network.run_until(Time::from_days(static_cast<double>(day)));
    Snapshot now;
    for (const auto& node : network.nodes()) {
      const NodeMetrics& m = network.metrics().node(node->id());
      now.generated += m.generated;
      now.delivered += m.delivered;
      now.lost += m.lost_in_outage;
      now.brownouts += m.brownouts;
      now.crashes += m.crashes;
    }
    std::printf("%4d %10llu %10llu %10llu %10llu %9llu%s\n", day,
                static_cast<unsigned long long>(now.generated - prev.generated),
                static_cast<unsigned long long>(now.delivered - prev.delivered),
                static_cast<unsigned long long>(now.lost - prev.lost),
                static_cast<unsigned long long>(now.brownouts - prev.brownouts),
                static_cast<unsigned long long>(now.crashes - prev.crashes),
                (day >= 5 && day <= 6) ? "   <- drought" : "");
    prev = now;
  }

  network.finalize_metrics();
  const NetworkSummary s = network.metrics().summarize();
  const GatewayMetrics& gw = network.metrics().gateway();
  std::printf("\nrecovery observability over %d days:\n", total_days);
  std::printf("  total gateway outage        %8.1f h\n", s.total_outage_s / 3600.0);
  std::printf("  packets lost in outage      %8llu\n",
              static_cast<unsigned long long>(s.lost_in_outage));
  std::printf("  uplinks at a dead gateway   %8llu\n",
              static_cast<unsigned long long>(gw.lost_outage));
  std::printf("  w_u recomputes skipped      %8llu\n",
              static_cast<unsigned long long>(gw.recomputes_skipped));
  std::printf("  node crashes                %8llu\n", static_cast<unsigned long long>(s.crashes));
  std::printf("  mean time-to-recover        %8.1f s\n", s.mean_recovery_s);
  std::printf("  max  time-to-recover        %8.1f s\n", s.max_recovery_s);
  std::printf("  mean w_u feedback age       %8.1f h\n", s.mean_w_age_s / 3600.0);
  std::printf("  max  w_u feedback age       %8.1f h\n", s.max_w_age_s / 3600.0);
  std::printf("  mean PRR                    %8.4f\n", s.mean_prr);
  return 0;
}
