// Scenario runner: drive any experiment from a key=value config file — no
// recompilation needed for parameter sweeps.
//
//   $ ./scenario_runner my_scenario.cfg [days]
//   $ ./scenario_runner --defaults           # print an annotated template
//
// Prints the scenario echo, the network summary, and writes per-node
// metrics to <label>_nodes.csv.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/csv.hpp"
#include "net/experiment.hpp"
#include "net/scenario_io.hpp"

namespace {

constexpr const char* kTemplate = R"(# BLAM scenario template - every key is optional; these are the defaults.
policy = lorawan              # lorawan | blam | theta_only | greedy_green
theta = 1.0                   # charging cap (H-50 => policy=blam, theta=0.5)
w_b = 1.0                     # degradation-vs-utility weight
nodes = 100
gateways = 1
radius_m = 5000
seed = 42
min_period_min = 16
max_period_min = 60
forecast_window_min = 1
payload_bytes = 10
utility = linear              # linear | exponential | step
sf_assignment = fixed         # fixed | distance
fixed_sf = 10
tx_power_dbm = 14
uplink_channels = 8
adr = false
battery_days = 8
solar_tx_per_window = 3
supercap_tx_buffer = 0        # >0 enables the hybrid-storage extension
insulated = true              # false enables the outdoor thermal model
temperature_c = 25
chemistry = lmo               # lmo | nmc | lfp battery presets
adaptive_theta = false        # closed-loop network-manager caps
duty_cycle = 1.0              # 0.01 = EU 1% T_off rule
confirmed = true              # false = fire-and-forget uplinks
fast_fading = false           # Rayleigh per-transmission fades
period_jitter = 0             # +/- fraction of the sampling period
interference_tx_per_hour = 0  # foreign LoRa traffic
packet_log = false            # per-packet event log (short runs only)
ingest_batch = 1              # gateway ledger ingest watermark (any value, same bytes)
shards = 1                    # collision-domain shards (any count, same bytes)
interference_floor_dbm = -500 # audibility cutoff, must be <= -142.5 (SF12 sensitivity);
                              # raising it toward -143 isolates cells for sharding
gateway_grid_pitch_m = 0      # >0 = city grid layout (gateways on a square grid)
cluster_radius_m = 0          # node scatter radius around the cell gateway

# Fault injection (all off by default) + graceful-degradation knobs.
fault_outage_daily_start_h = 0
fault_outage_daily_duration_h = 0   # >0 = fixed daily gateway outage
fault_outage_random_per_day = 0     # Poisson random outages
fault_outage_min_min = 15
fault_outage_max_min = 120
fault_ack_loss_good = 0             # Gilbert-Elliott downlink ACK loss
fault_ack_loss_bad = 0
fault_ack_good_mean_min = 240
fault_ack_bad_mean_min = 10
fault_crash_per_year = 0            # node crash/reboot (wipes estimators)
fault_reboot_duration_min = 10
fault_drought_start_days = 0        # solar drought interval
fault_drought_duration_days = 0
fault_drought_scale = 1
fault_report_loss = 0               # per-report SoC feedback-pipe faults
fault_report_dup = 0                # (probabilities; sum must be <= 1)
fault_report_reorder = 0
fault_report_corrupt = 0
fault_report_truncate = 0
stale_feedback_k = 0                # ramp w_u toward 1 past k stale periods
ack_failure_backoff = false         # budget >>= consecutive ACK-less packets
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace blam;

  if (argc >= 2 && std::strcmp(argv[1], "--defaults") == 0) {
    std::fputs(kTemplate, stdout);
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config-file> [days]\n       %s --defaults\n", argv[0],
                 argv[0]);
    return 2;
  }

  try {
    const ConfigFile file = ConfigFile::load(argv[1]);
    const ScenarioConfig config = scenario_from_config(file);
    const double days = argc > 2 ? std::atof(argv[2]) : 30.0;

    std::fputs(describe_scenario(config).c_str(), stdout);
    std::printf("running %.1f simulated days ...\n\n", days);

    const ExperimentResult r = run_scenario(config, Time::from_days(days));

    std::printf("mean PRR            %10.4f (min %.4f)\n", r.summary.mean_prr, r.summary.min_prr);
    std::printf("mean utility        %10.4f\n", r.summary.mean_utility);
    std::printf("avg RETX per packet %10.3f\n", r.summary.mean_retx);
    std::printf("TX energy           %10.2f kJ\n", r.summary.total_tx_energy.joules() / 1e3);
    std::printf("latency (delivered) %10.2f s\n", r.summary.mean_delivered_latency_s);
    std::printf("degradation mean    %10.6f (max %.6f)\n", r.summary.degradation_box.mean,
                r.summary.max_degradation);
    std::printf("events executed     %10llu\n",
                static_cast<unsigned long long>(r.events_executed));

    const std::string csv_path = config.label + "_nodes.csv";
    CsvWriter csv{csv_path,
                  {"node", "generated", "delivered", "retx", "prr", "utility", "latency_s",
                   "tx_energy_j", "degradation", "mean_soc", "majority_window"}};
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      const NodeMetrics& m = r.nodes[i];
      csv.row({CsvWriter::cell(static_cast<std::uint64_t>(i)), CsvWriter::cell(m.generated),
               CsvWriter::cell(m.delivered), CsvWriter::cell(m.retx), CsvWriter::cell(m.prr()),
               CsvWriter::cell(m.avg_utility()), CsvWriter::cell(m.delivered_latency_s.mean()),
               CsvWriter::cell(m.tx_energy.joules()), CsvWriter::cell(m.degradation),
               CsvWriter::cell(m.mean_soc),
               CsvWriter::cell(static_cast<std::int64_t>(m.majority_window()))});
    }
    csv.flush();
    std::printf("\nper-node metrics -> %s\n", csv_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
