// Replays the paper's physical testbed (Sec. IV-B): 10 SX1276 nodes at
// SF10 on one 125 kHz channel, 10-minute sampling periods, 1-minute
// forecast windows, a 24-hour run on "a random day from the year-long
// energy trace", comparing H-100 against plain LoRaWAN. Prints the
// per-node table behind Fig. 9. The day argument selects which weather
// realization the 24 hours get.
//
//   $ ./testbed_replay [day] [seed]
#include <cstdio>
#include <cstdlib>

#include "net/network.hpp"

namespace {

blam::ScenarioConfig testbed(blam::PolicyKind policy, double theta, std::uint64_t seed,
                             int day) {
  using namespace blam;
  ScenarioConfig c;
  c.policy = policy;
  c.theta = theta;
  c.label = c.policy_label();
  c.seed = seed;
  // The paper replays one random day of the NREL trace; selecting the day
  // here selects the weather realization of the simulated 24 hours.
  c.solar.seed = seed * 1000 + static_cast<std::uint64_t>(day);
  c.n_nodes = 10;
  c.radius_m = 50.0;  // indoor lab
  c.min_period = Time::from_minutes(10.0);
  c.max_period = Time::from_minutes(10.0);
  c.uplink_channels = 1;
  c.downlink_channels = 1;
  c.sf_assignment = SfAssignment::kFixed;
  c.fixed_sf = SpreadingFactor::kSF10;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blam;

  const int day = argc > 1 ? std::atoi(argv[1]) : 160;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("testbed replay: 10 nodes, SF10, 1 channel, day %d of the solar year\n\n", day);

  for (const auto& [policy, theta] :
       {std::pair{PolicyKind::kLorawan, 1.0}, {PolicyKind::kBlam, 1.0}}) {
    Network network{testbed(policy, theta, seed, day)};
    network.run_until(Time::from_days(1.0));
    network.finalize_metrics();

    std::printf("--- %s ---\n", network.config().label.c_str());
    std::printf("%-6s %10s %10s %12s %12s\n", "node", "PRR", "retx/pkt", "cycle_aging",
                "latency_s");
    for (std::size_t i = 0; i < network.metrics().node_count(); ++i) {
      const NodeMetrics& m = network.metrics().node(i);
      std::printf("%-6zu %10.4f %10.3f %12.3e %12.2f\n", i, m.prr(), m.avg_retx(),
                  m.cycle_linear, m.delivered_latency_s.mean());
    }
    const NetworkSummary s = network.metrics().summarize();
    std::printf("network: PRR %.4f, avg retx %.3f, delivered latency %.2f s\n\n", s.mean_prr,
                s.mean_retx, s.mean_delivered_latency_s);
  }

  std::printf("paper Fig. 9: PRR 100%% for both; H-100 shows ~80%% lower cycle aging,\n"
              "fewer retransmissions, and higher (but bounded) latency.\n");
  return 0;
}
