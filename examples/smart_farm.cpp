// Smart-farm scenario (one of the application domains the paper's intro
// motivates): a 150-node soil/weather sensing deployment over 3 km, mixed
// sampling periods, distance-based spreading factors with shadowing, run
// for one simulated season under three protocols. Demonstrates building a
// custom ScenarioConfig rather than using the paper presets.
//
//   $ ./smart_farm [nodes] [days] [seed]
#include <cstdio>
#include <cstdlib>

#include "net/experiment.hpp"

int main(int argc, char** argv) {
  using namespace blam;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 150;
  const double days = argc > 2 ? std::atof(argv[2]) : 90.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2024;

  auto farm_config = [&](PolicyKind policy, double theta) {
    ScenarioConfig c;
    c.policy = policy;
    c.theta = theta;
    c.label = c.policy_label();
    c.seed = seed;
    c.n_nodes = nodes;
    c.radius_m = 3000.0;
    // Soil probes report every 20-30 min; weather masts every 16 min.
    c.min_period = Time::from_minutes(16.0);
    c.max_period = Time::from_minutes(30.0);
    // Real terrain: distance-based SF with log-normal shadowing.
    c.sf_assignment = SfAssignment::kDistanceBased;
    c.path_loss.shadowing_sigma_db = 6.0;
    c.sf_margin_db = 2.0;
    // Slightly time-sensitive data: utility holds for the first 40% of the
    // period, then drops to a floor.
    c.utility = UtilityKind::kStep;
    c.step_deadline = 0.4;
    c.step_floor = 0.2;
    return c;
  };

  std::printf("smart farm: %d nodes over 3 km, %.0f days, step utility (fresh 40%%)\n\n",
              nodes, days);

  const auto trace = build_shared_trace(farm_config(PolicyKind::kLorawan, 1.0));
  const Time duration = Time::from_days(days);

  std::printf("%-10s %8s %8s %10s %12s %12s %12s\n", "protocol", "PRR", "utility",
              "retx/pkt", "TXenergy_kJ", "deg_mean", "latency_s");
  for (const auto& [policy, theta] :
       {std::pair{PolicyKind::kLorawan, 1.0}, {PolicyKind::kThetaOnly, 0.5},
        {PolicyKind::kBlam, 0.5}}) {
    const ExperimentResult r = run_scenario(farm_config(policy, theta), duration, trace);
    std::printf("%-10s %8.4f %8.4f %10.3f %12.2f %12.6f %12.2f\n", r.label.c_str(),
                r.summary.mean_prr, r.summary.mean_utility, r.summary.mean_retx,
                r.summary.total_tx_energy.joules() / 1e3, r.summary.degradation_box.mean,
                r.summary.mean_delivered_latency_s);
  }

  std::printf("\nwith the step utility, deferring within the first 40%% of the period is\n"
              "free: the proposed MAC harvests that slack for battery lifespan.\n");
  return 0;
}
