// Quickstart: build a 50-node LoRa network, run one simulated week under
// plain LoRaWAN and under the proposed battery lifespan-aware MAC (H-50),
// and print the headline metrics side by side.
//
//   $ ./quickstart [nodes] [days] [seed]
#include <cstdio>
#include <cstdlib>

#include "net/experiment.hpp"

int main(int argc, char** argv) {
  using namespace blam;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 50;
  const double days = argc > 2 ? std::atof(argv[2]) : 7.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::printf("BLAM quickstart: %d nodes, %.1f days, seed %llu\n\n", nodes, days,
              static_cast<unsigned long long>(seed));

  // Both protocols face the same weather.
  const ScenarioConfig lorawan = lorawan_scenario(nodes, seed);
  const auto trace = build_shared_trace(lorawan);

  const Time duration = Time::from_days(days);
  const ExperimentResult base = run_scenario(lorawan, duration, trace);
  const ExperimentResult blam = run_scenario(blam_scenario(nodes, 0.5, seed), duration, trace);

  std::printf("%-22s %12s %12s\n", "metric", "LoRaWAN", "H-50");
  std::printf("%-22s %12.4f %12.4f\n", "mean PRR", base.summary.mean_prr, blam.summary.mean_prr);
  std::printf("%-22s %12.4f %12.4f\n", "min PRR", base.summary.min_prr, blam.summary.min_prr);
  std::printf("%-22s %12.4f %12.4f\n", "mean utility", base.summary.mean_utility,
              blam.summary.mean_utility);
  std::printf("%-22s %12.2f %12.2f\n", "mean latency (s)", base.summary.mean_latency_s,
              blam.summary.mean_latency_s);
  std::printf("%-22s %12.4f %12.4f\n", "avg RETX per packet", base.summary.mean_retx,
              blam.summary.mean_retx);
  std::printf("%-22s %12.3f %12.3f\n", "total TX energy (J)",
              base.summary.total_tx_energy.joules(), blam.summary.total_tx_energy.joules());
  std::printf("%-22s %12.6f %12.6f\n", "mean degradation", base.summary.degradation_box.mean,
              blam.summary.degradation_box.mean);
  std::printf("%-22s %12.6f %12.6f\n", "max degradation", base.summary.max_degradation,
              blam.summary.max_degradation);

  auto failure_breakdown = [](const ExperimentResult& r) {
    unsigned long long generated = 0, delivered = 0, exhausted = 0, drops = 0, brownouts = 0;
    double soc_sum = 0.0, cal_sum = 0.0, cyc_sum = 0.0;
    for (const NodeMetrics& n : r.nodes) {
      generated += n.generated;
      delivered += n.delivered;
      exhausted += n.exhausted;
      drops += n.policy_drops;
      brownouts += n.brownouts;
      soc_sum += n.mean_soc;
      cal_sum += n.calendar_linear;
      cyc_sum += n.cycle_linear;
    }
    const double inv = 1.0 / static_cast<double>(r.nodes.size());
    std::printf("  %-10s generated=%llu delivered=%llu exhausted=%llu policy-drops=%llu "
                "brownouts=%llu mean-SoC=%.3f cal=%.5f cyc=%.5f\n",
                r.label.c_str(), generated, delivered, exhausted, drops, brownouts,
                soc_sum * inv, cal_sum * inv, cyc_sum * inv);
  };
  std::printf("\nfailure breakdown:\n");
  failure_breakdown(base);
  failure_breakdown(blam);

  std::printf("\ngateway (LoRaWAN): arrivals=%llu received=%llu interference=%llu half-duplex=%llu\n",
              static_cast<unsigned long long>(base.gateway.arrivals),
              static_cast<unsigned long long>(base.gateway.received),
              static_cast<unsigned long long>(base.gateway.lost_interference),
              static_cast<unsigned long long>(base.gateway.lost_half_duplex));
  std::printf("gateway (H-50):    arrivals=%llu received=%llu interference=%llu half-duplex=%llu\n",
              static_cast<unsigned long long>(blam.gateway.arrivals),
              static_cast<unsigned long long>(blam.gateway.received),
              static_cast<unsigned long long>(blam.gateway.lost_interference),
              static_cast<unsigned long long>(blam.gateway.lost_half_duplex));

  std::printf("\nH-50 majority-window histogram:");
  for (std::size_t w = 0; w < blam.window_histogram.size() && w < 8; ++w) {
    std::printf(" w%zu=%d", w, blam.window_histogram[w]);
  }
  std::printf("\nevents executed: LoRaWAN=%llu H-50=%llu\n",
              static_cast<unsigned long long>(base.events_executed),
              static_cast<unsigned long long>(blam.events_executed));
  return 0;
}
