// Lifespan study: sweeps the charging threshold theta and reports the
// projected network battery lifespan (time to first EoL) together with the
// service metrics, exposing the theta trade-off the paper's Figs. 5-8
// explore. Uses accelerated aging by default so the example finishes in
// seconds; pass a calendar-rate multiplier of 1 for real-time aging.
//
//   $ ./lifespan_study [nodes] [aging-multiplier] [seed]
#include <cstdio>
#include <cstdlib>

#include "net/experiment.hpp"

int main(int argc, char** argv) {
  using namespace blam;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 30;
  const double aging = argc > 2 ? std::atof(argv[2]) : 20.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2025;

  std::printf("lifespan study: %d nodes, aging accelerated %.0fx, theta sweep\n", nodes, aging);
  std::printf("(lifespans below are re-scaled back to real time)\n\n");

  auto config_for = [&](double theta) {
    ScenarioConfig c = theta >= 1.0 ? lorawan_scenario(nodes, seed)
                                    : blam_scenario(nodes, theta, seed);
    c.degradation.k1 *= aging;
    c.degradation.k6 *= aging;
    return c;
  };

  const auto trace = build_shared_trace(config_for(1.0));
  const Time step = Time::from_days(10.0);
  const Time horizon = Time::from_days(365.0 * 30.0 / aging);

  std::printf("%-10s %14s %10s %10s %10s\n", "protocol", "lifespan_yrs", "PRR", "utility",
              "retx");
  for (double theta : {1.0, 0.7, 0.5, 0.3, 0.1}) {
    const ScenarioConfig config = config_for(theta);
    const LifespanResult life = run_until_eol(config, horizon, step, trace);
    // Re-run the first stretch for service metrics (cheap at these scales).
    const ExperimentResult service =
        run_scenario(config, std::min(horizon, Time::from_days(120.0)), trace);
    std::printf("%-10s %14.2f %10.4f %10.4f %10.3f%s\n", config.label.c_str(),
                life.lifespan.days() * aging / 365.0, service.summary.mean_prr,
                service.summary.mean_utility, service.summary.mean_retx,
                life.reached_eol ? "" : "  [horizon]");
  }

  std::printf("\nshape: lifespan grows as theta shrinks, but very low theta starts\n"
              "dropping packets (PRR) once the capped battery cannot bridge the night.\n");
  return 0;
}
