// Rule implementations and the suppression engine. Matching is token-based:
// string literals and comments can never trip a rule, and `::` is a single
// token so `std::function` is the three-token sequence [std][::][function].
#include "blam-lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace blam::lint {

namespace {

// ---------------------------------------------------------------------------
// Path scoping helpers. Paths are normalized to forward slashes; scoping is
// suffix/substring based so absolute and repo-relative invocations agree.
// ---------------------------------------------------------------------------

[[nodiscard]] std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

[[nodiscard]] bool in_dir(const std::string& path, std::string_view dir) {
  const std::string needle = std::string{dir} + "/";
  return path.rfind(needle, 0) == 0 || path.find("/" + needle) != std::string::npos;
}

[[nodiscard]] bool ends_with(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] bool is_header(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

/// The one translation unit allowed to touch entropy primitives.
[[nodiscard]] bool is_rng_authority(const std::string& path) {
  return ends_with(path, "src/common/rng.hpp") || ends_with(path, "src/common/rng.cpp") ||
         path == "common/rng.hpp" || path == "common/rng.cpp";
}

/// Files on the event hot path PR 3 made allocation-free, plus the PR-7
/// million-node ingest path (arena, columnar ledger, staging queue).
/// sweep_runner and campaign live in src/sim/ too but are per-cell
/// orchestration, not per-event code, so they are deliberately not listed.
[[nodiscard]] bool is_hot_path(const std::string& path) {
  static constexpr std::array<std::string_view, 9> kHot = {
      "src/sim/event_queue.hpp",  "src/sim/event_queue.cpp",
      "src/sim/simulator.hpp",    "src/sim/simulator.cpp",
      "src/sim/inline_callback.hpp",
      "src/core/span_arena.hpp",  "src/core/ledger_store.hpp",
      "src/core/ledger_store.cpp", "src/core/soc_ingest_queue.hpp",
  };
  return std::any_of(kHot.begin(), kHot.end(),
                     [&path](std::string_view h) { return ends_with(path, h); });
}

/// PR-8 sharded engine: its per-epoch worker loop shares the event hot
/// path, so std::function, node-based containers, and plain new/delete stay
/// banned — but shard construction happens once per run and legitimately
/// owns its parts through unique_ptr/shared_ptr factories, so the smart
/// pointer bans of the strict hot-path set do not apply.
[[nodiscard]] bool is_shard_engine(const std::string& path) {
  return ends_with(path, "src/sim/shard_engine.hpp") ||
         ends_with(path, "src/sim/shard_engine.cpp");
}

struct Ctx {
  const std::string& path;
  const std::vector<Token>& toks;
};

[[nodiscard]] bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

/// tokens[i] is preceded by `std::` (identifier std, then the :: token).
[[nodiscard]] bool after_std_scope(const std::vector<Token>& toks, std::size_t i) {
  return i >= 2 && toks[i - 1].kind == TokKind::kPunct && toks[i - 1].text == "::" &&
         is_ident(toks[i - 2], "std");
}

void add(std::vector<Finding>& out, std::string rule, const Ctx& ctx, const Token& at,
         std::string message) {
  Finding f;
  f.rule = std::move(rule);
  f.path = ctx.path;
  f.line = at.line;
  f.col = at.col;
  f.message = std::move(message);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// D1: banned nondeterminism APIs outside the RNG authority.
// ---------------------------------------------------------------------------

void rule_d1(const Ctx& ctx, std::vector<Finding>& out) {
  if (is_rng_authority(ctx.path)) return;
  static const std::map<std::string, std::string> kBanned = {
      {"srand", "seeds the global C RNG; use blam::Rng streams"},
      {"random_device", "reads OS entropy; derive streams from the scenario seed instead"},
      {"mt19937", "uninjected engine; use blam::Rng (xoshiro256++) streams"},
      {"mt19937_64", "uninjected engine; use blam::Rng (xoshiro256++) streams"},
      {"default_random_engine", "implementation-defined engine; use blam::Rng streams"},
      {"system_clock", "wall-clock time is nondeterministic; use Simulator::now() "
                       "(steady_clock is fine for benchmarking walls)"},
  };
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (const auto it = kBanned.find(t.text); it != kBanned.end()) {
      add(out, "D1", ctx, t, t.text + ": " + it->second);
      continue;
    }
    // rand(...) as a call; `rand` as a plain name (e.g. a field) is not the
    // libc function.
    if (t.text == "rand" && i + 1 < toks.size() && toks[i + 1].text == "(") {
      add(out, "D1", ctx, t, "rand(): global C RNG; use blam::Rng streams");
      continue;
    }
    // time(nullptr) / time(NULL) / time(0).
    if (t.text == "time" && i + 3 < toks.size() && toks[i + 1].text == "(" &&
        (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL" || toks[i + 2].text == "0") &&
        toks[i + 3].text == ")") {
      add(out, "D1", ctx, t, "time(" + toks[i + 2].text + "): wall-clock seed; "
                             "derive randomness from the scenario seed");
    }
  }
}

// ---------------------------------------------------------------------------
// D2: unordered-container hazards. Two checks: (a) every unordered_map/set
// type usage is a latent ordering hazard that must carry a justification,
// and (b) a range-for over a name declared with an unordered type in the
// same file is flagged at the loop. (b) cannot see through `auto` locals
// initialized from function calls; (a) is the backstop that makes the
// hazard visible at the declaration.
// ---------------------------------------------------------------------------

void rule_d2(const Ctx& ctx, std::vector<Finding>& out) {
  if (in_dir(ctx.path, "tests")) return;  // gtest fixtures may use anything
  static constexpr std::array<std::string_view, 4> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  const auto& toks = ctx.toks;

  std::set<std::string> declared;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier ||
        std::find(kUnordered.begin(), kUnordered.end(), t.text) == kUnordered.end()) {
      continue;
    }
    add(out, "D2", ctx, t,
        "std::" + t.text + ": iteration order is unspecified; prove it cannot reach any "
        "output (suppress with ordering proof) or iterate a sorted key snapshot");
    // Capture the declared name: skip the template argument list, then the
    // next identifier is the variable (or alias / function) being declared.
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") {
          if (--depth == 0) {
            ++j;
            break;
          }
        }
        // `>>` closing nested templates arrives as two '>' puncts already.
      }
    }
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*")) ++j;
    if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) declared.insert(toks[j].text);
  }
  if (declared.empty()) return;

  // Range-for loops whose range expression names a declared unordered
  // container: `for ( ... : expr )`.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || toks[i + 1].text != "(") continue;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (toks[j].kind == TokKind::kPunct && toks[j].text == ":" && depth == 1 && colon == 0) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == TokKind::kIdentifier && declared.contains(toks[j].text)) {
        add(out, "D2", ctx, toks[i],
            "range-for over unordered container '" + toks[j].text +
                "': element order is nondeterministic; iterate sorted keys instead");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// U1: raw double/float unit-suffixed parameters in public headers. The
// strong types in src/common/units.hpp exist so seconds/joules/watts cannot
// be mixed up; a raw `double foo_s` parameter reintroduces the hazard at
// the API boundary. Matching is restricted to parenthesised contexts so
// struct fields (CSV staging rows) are not flagged.
// ---------------------------------------------------------------------------

[[nodiscard]] const char* unit_suffix_hint(const std::string& name) {
  const auto has = [&name](std::string_view suffix) {
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  if (has("_s")) return "blam::Time";
  if (has("_j")) return "blam::Energy";
  if (has("_w")) return "blam::Power";
  if (has("_soc")) return "a documented [0,1] fraction type";
  return nullptr;
}

void rule_u1(const Ctx& ctx, std::vector<Finding>& out) {
  if (!is_header(ctx.path) || !in_dir(ctx.path, "src")) return;
  const auto& toks = ctx.toks;
  int paren_depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") paren_depth = std::max(0, paren_depth - 1);
      continue;
    }
    if (paren_depth == 0 || (t.text != "double" && t.text != "float")) continue;
    if (i + 2 >= toks.size() || toks[i + 1].kind != TokKind::kIdentifier) continue;
    const std::string& name = toks[i + 1].text;
    const std::string& after = toks[i + 2].text;
    if (after != "," && after != ")" && after != "=") continue;
    if (const char* hint = unit_suffix_hint(name); hint != nullptr) {
      add(out, "U1", ctx, t,
          "raw " + t.text + " parameter '" + name + "' in a public header; use " + hint +
              " (see src/common/units.hpp)");
    }
  }
}

// ---------------------------------------------------------------------------
// H1: allocation/indirection constructs in hot-path files. Guards PR 3's
// zero-allocation event loop: std::function, plain new/delete, and
// node-based std:: containers may not come back. Placement new (`new (`)
// and `= delete` are legal; std::vector is allowed because the approved
// pattern (pre-reserved slab + free list) is built on it. The PR-8 shard
// engine is covered by a narrower set: setup-time smart pointers are fine,
// per-event hazards are not.
// ---------------------------------------------------------------------------

void rule_h1(const Ctx& ctx, std::vector<Finding>& out) {
  const bool shard_engine = is_shard_engine(ctx.path);
  if (!shard_engine && !is_hot_path(ctx.path)) return;
  static constexpr std::array<std::string_view, 11> kBannedStd = {
      "function", "map",     "set",        "multimap",    "multiset",   "list",
      "deque",    "forward_list", "shared_ptr", "make_shared", "make_unique"};
  // Shard-engine files keep the per-event bans but drop the smart-pointer
  // ones (see is_shard_engine).
  static constexpr std::array<std::string_view, 8> kBannedShard = {
      "function", "map", "set", "multimap", "multiset", "list", "deque", "forward_list"};
  const std::string_view* banned_begin = shard_engine ? kBannedShard.data() : kBannedStd.data();
  const std::string_view* banned_end =
      banned_begin + (shard_engine ? kBannedShard.size() : kBannedStd.size());
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (after_std_scope(toks, i) &&
        std::find(banned_begin, banned_end, t.text) != banned_end) {
      add(out, "H1", ctx, t,
          "std::" + t.text + " in an event hot-path file; use InlineCallback / pre-reserved "
          "vectors / slot pools (see DESIGN.md sec. 9)");
      continue;
    }
    if (t.text == "new" && i + 1 < toks.size() && toks[i + 1].text != "(") {
      add(out, "H1", ctx, t, "allocating `new` in an event hot-path file (placement new into "
                             "owned storage is the allowed form)");
      continue;
    }
    if (t.text == "delete" && (i == 0 || toks[i - 1].text != "=")) {
      add(out, "H1", ctx, t, "`delete` in an event hot-path file; hot-path objects live in "
                             "pre-reserved pools");
    }
  }
}

// ---------------------------------------------------------------------------
// C1: a CsvWriter constructed without a reachable flush() in the same file.
// flush() is the commit step of the atomic tmp-rename protocol; forgetting
// it means no output file at all (the destructor only warns).
// ---------------------------------------------------------------------------

void rule_c1(const Ctx& ctx, std::vector<Finding>& out) {
  if (in_dir(ctx.path, "tests")) return;  // tests construct-without-flush on purpose
  const auto& toks = ctx.toks;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "CsvWriter")) continue;
    // `CsvWriter name{...}` / `CsvWriter name(...)` / `CsvWriter name;` is a
    // construction; `CsvWriter::` / `class CsvWriter` / `CsvWriter(` are not.
    if (toks[i + 1].kind != TokKind::kIdentifier) continue;
    const std::string& name = toks[i + 1].text;
    const std::string& open = toks[i + 2].text;
    if (open != "{" && open != "(" && open != ";") continue;
    bool flushed = false;
    for (std::size_t j = i + 3; j + 2 < toks.size(); ++j) {
      if (is_ident(toks[j], name) && toks[j + 1].text == "." &&
          is_ident(toks[j + 2], "flush")) {
        flushed = true;
        break;
      }
    }
    if (!flushed) {
      add(out, "C1", ctx, toks[i],
          "CsvWriter '" + name + "' is never flush()ed in this file; without the commit "
          "rename the output file is never produced");
    }
  }
}

// ---------------------------------------------------------------------------
// Suppressions: the tool name, a colon, then `allow(RULE[,RULE...]) -- reason`
// (see lint.hpp for a literal example). Trailing comments cover their own
// line; own-line comments cover the next line. A marker that does not
// parse, names an unknown rule, or lacks a reason is an S1 finding (S1
// itself cannot be suppressed).
// ---------------------------------------------------------------------------

struct Suppression {
  std::set<std::string> rules;
  std::string reason;
  int first_line{0};
  int last_line{0};
};

[[nodiscard]] bool known_rule(const std::string& id) {
  const auto& infos = rule_infos();
  return std::any_of(infos.begin(), infos.end(),
                     [&id](const RuleInfo& r) { return r.id == id && r.id != "S1"; });
}

void parse_suppressions(const Ctx& ctx, const std::vector<Comment>& comments,
                        std::vector<Suppression>& sups, std::vector<Finding>& out) {
  static constexpr std::string_view kMarker = "blam-lint:";
  for (const Comment& c : comments) {
    const std::size_t mark = c.text.find(kMarker);
    if (mark == std::string::npos) continue;
    const Token anchor{TokKind::kPunct, "", c.line, 1};
    std::string rest = c.text.substr(mark + kMarker.size());
    const std::size_t allow = rest.find("allow(");
    const std::size_t close = rest.find(')', allow == std::string::npos ? 0 : allow);
    if (allow == std::string::npos || close == std::string::npos) {
      add(out, "S1", ctx, anchor, "malformed suppression: expected `blam-lint: allow(RULE[,"
                                  "RULE...]) -- reason`");
      continue;
    }
    Suppression sup;
    std::stringstream list{rest.substr(allow + 6, close - allow - 6)};
    std::string id;
    bool ok = true;
    while (std::getline(list, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char ch) { return std::isspace(ch) != 0; }),
               id.end());
      if (id.empty()) continue;
      if (!known_rule(id)) {
        add(out, "S1", ctx, anchor, "suppression names unknown rule '" + id + "'");
        ok = false;
        break;
      }
      sup.rules.insert(id);
    }
    if (!ok) continue;
    if (sup.rules.empty()) {
      add(out, "S1", ctx, anchor, "suppression allows no rules");
      continue;
    }
    const std::size_t dash = rest.find("--", close);
    std::string reason = dash == std::string::npos ? "" : rest.substr(dash + 2);
    const auto not_space = [](unsigned char ch) { return std::isspace(ch) == 0; };
    reason.erase(reason.begin(), std::find_if(reason.begin(), reason.end(), not_space));
    reason.erase(std::find_if(reason.rbegin(), reason.rend(), not_space).base(), reason.end());
    if (reason.empty()) {
      add(out, "S1", ctx, anchor, "suppression has no justification: add `-- <reason>`");
      continue;
    }
    sup.reason = std::move(reason);
    sup.first_line = c.own_line ? c.line + 1 : c.line;
    sup.last_line = sup.first_line;
    sups.push_back(std::move(sup));
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_infos() {
  static const std::vector<RuleInfo> kInfos = {
      {"D1", "banned nondeterminism APIs outside src/common/rng.*"},
      {"D2", "unordered-container usage/iteration (output-ordering hazard)"},
      {"U1", "raw double/float unit-suffixed parameters in public headers"},
      {"H1", "allocation/indirection constructs in event hot-path files"},
      {"C1", "CsvWriter constructed without a reachable flush()"},
      {"S1", "malformed suppression comment (not itself suppressible)"},
  };
  return kInfos;
}

std::vector<Finding> lint_source(const std::string& path, std::string_view source) {
  const std::string norm = normalize(path);
  const TokenizedSource tokenized = tokenize(source);
  const Ctx ctx{norm, tokenized.tokens};

  std::vector<Finding> findings;
  rule_d1(ctx, findings);
  rule_d2(ctx, findings);
  rule_u1(ctx, findings);
  rule_h1(ctx, findings);
  rule_c1(ctx, findings);

  std::vector<Suppression> sups;
  parse_suppressions(ctx, tokenized.comments, sups, findings);

  for (Finding& f : findings) {
    if (f.rule == "S1") continue;
    for (const Suppression& sup : sups) {
      if (f.line >= sup.first_line && f.line <= sup.last_line && sup.rules.contains(f.rule)) {
        f.suppressed = true;
        f.suppress_reason = sup.reason;
        break;
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"blam-lint: cannot read " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str());
}

std::string to_string(const Finding& f) {
  std::string line = f.path + ":" + std::to_string(f.line) + ":" + std::to_string(f.col) +
                     ": [" + f.rule + "] " + f.message;
  if (f.suppressed) line += " (suppressed: " + f.suppress_reason + ")";
  return line;
}

std::string to_json(const std::vector<Finding>& findings) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string json = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) json += ",";
    json += "\n  {\"rule\":\"" + escape(f.rule) + "\",\"path\":\"" + escape(f.path) +
            "\",\"line\":" + std::to_string(f.line) + ",\"col\":" + std::to_string(f.col) +
            ",\"message\":\"" + escape(f.message) + "\",\"suppressed\":" +
            (f.suppressed ? "true" : "false") + ",\"reason\":\"" + escape(f.suppress_reason) +
            "\"}";
  }
  json += "\n]\n";
  return json;
}

}  // namespace blam::lint
