// blam-lint — a repo-native static analyzer for the BLAM simulator.
//
// Generic tools cannot express BLAM's reproduction invariants (single RNG
// authority, no unordered iteration feeding outputs, strong units at API
// boundaries, an allocation-free event hot path, committed CSV output), so
// this tool does. It is a comment/string-aware tokenizer plus a small rule
// registry; findings are suppressible inline with a written justification:
//
//   // blam-lint: allow(D2) -- lookup-only by id; never iterated
//
// A suppression on its own line covers the next source line; a trailing
// suppression covers its own line. A suppression without a reason (the text
// after `--`) is itself a finding (S1), so every exception in the tree
// carries a justification that survives review.
//
// Rules (see rules.cpp for the matching details):
//   D1  banned nondeterminism APIs outside src/common/rng.*
//   D2  unordered-container usage / iteration (ordering hazard for outputs)
//   U1  raw double/float unit-suffixed parameters in public headers
//   H1  allocation/indirection constructs in the event hot path
//   C1  CsvWriter constructed without a reachable flush() in the same file
//   S1  malformed suppression comment (unknown rule, missing reason)
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace blam::lint {

enum class TokKind { kIdentifier, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind{TokKind::kPunct};
  std::string text;
  int line{0};
  int col{0};
};

/// A comment as seen by the tokenizer. `own_line` is true when nothing but
/// whitespace precedes it on its starting line (the comment "owns" the
/// line), which decides whether a suppression covers this line or the next.
struct Comment {
  std::string text;
  int line{0};      // line the comment ends on (suppressions anchor here)
  bool own_line{false};
};

/// A preprocessor directive, captured verbatim (continuations joined) so
/// cross-file passes (blam-analyze's include-graph walker) can read
/// `#include` targets without re-scanning the raw source.
struct Directive {
  std::string text;  // from '#' (exclusive) to end of line, e.g. `include "a.hpp"`
  int line{0};
};

struct TokenizedSource {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
};

/// Splits C++ source into tokens and comments. String/char literals become
/// single tokens (their contents can never trip an identifier rule), raw
/// strings and digit separators are understood, `::` is one token, and
/// preprocessor directives are skipped entirely (continuation-aware).
[[nodiscard]] TokenizedSource tokenize(std::string_view source);

struct Finding {
  std::string rule;
  std::string path;
  int line{0};
  int col{0};
  std::string message;
  bool suppressed{false};
  std::string suppress_reason;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// The registered rules, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rule_infos();

/// Lints one in-memory source. `path` drives the per-directory rule scoping
/// (e.g. U1 only looks at headers under src/); use repo-relative paths.
/// Suppressed findings are returned with `suppressed == true` so callers
/// can audit justifications.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path, std::string_view source);

/// Reads and lints a file on disk; throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path);

/// Human-readable one-line rendering: `path:line:col: [rule] message`.
[[nodiscard]] std::string to_string(const Finding& finding);

/// Machine-readable rendering of a finding batch as a JSON array.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

}  // namespace blam::lint
