#include "blam-lint/lint.hpp"

#include <cctype>

namespace blam::lint {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_{src} {}

  [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int col() const { return col_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      line_has_code_ = false;
    } else {
      ++col_;
    }
    return c;
  }

  /// Whether anything other than whitespace appeared on the current line so
  /// far (decides Comment::own_line).
  [[nodiscard]] bool line_has_code() const { return line_has_code_; }
  void mark_code() { line_has_code_ = true; }

 private:
  std::string_view src_;
  std::size_t pos_{0};
  int line_{1};
  int col_{1};
  bool line_has_code_{false};
};

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// True when `text` is a valid raw-string prefix ending in R (R, u8R, uR,
/// UR, LR): the identifier immediately before `"` that switches the lexer
/// into raw-string mode.
[[nodiscard]] bool is_raw_string_prefix(std::string_view text) {
  return text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR";
}

/// Consumes a quoted literal (string or char) including escapes; the
/// opening quote has already been consumed.
void consume_quoted(Cursor& cur, char quote) {
  while (!cur.done()) {
    const char c = cur.advance();
    if (c == '\\' && !cur.done()) {
      cur.advance();
    } else if (c == quote || c == '\n') {
      // A newline ends the literal too: unterminated literals must not eat
      // the rest of the file (the linter is tolerant of broken fixtures).
      return;
    }
  }
}

/// Consumes `R"delim( ... )delim"`; the opening quote has been consumed.
void consume_raw_string(Cursor& cur) {
  std::string delim;
  while (!cur.done() && cur.peek() != '(') delim += cur.advance();
  if (cur.done()) return;
  cur.advance();  // '('
  const std::string closer = ")" + delim + "\"";
  std::string window;
  while (!cur.done()) {
    window += cur.advance();
    if (window.size() > closer.size()) window.erase(window.begin());
    if (window == closer) return;
  }
}

/// Consumes a preprocessor directive to end of line, honouring backslash
/// continuations; the '#' has been consumed. Returns the directive text with
/// continuations joined by a single space.
[[nodiscard]] std::string consume_directive(Cursor& cur) {
  std::string text;
  while (!cur.done()) {
    const char c = cur.peek();
    if (c == '\\' && (cur.peek(1) == '\n' || (cur.peek(1) == '\r' && cur.peek(2) == '\n'))) {
      cur.advance();  // backslash
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      if (!cur.done()) cur.advance();  // the newline: directive continues
      text += ' ';
      continue;
    }
    if (c == '\n') break;  // leave the newline for the main loop
    text += cur.advance();
  }
  return text;
}

/// Consumes a pp-number: digits, identifier chars, digit separators, dots,
/// and exponent signs. Digit separators (1'000'000) matter: without this
/// the char-literal scanner would swallow the rest of the line.
void consume_number(Cursor& cur) {
  while (!cur.done()) {
    const char c = cur.peek();
    if (is_ident_char(c) || c == '.') {
      cur.advance();
    } else if (c == '\'' && is_ident_char(cur.peek(1))) {
      cur.advance();
      cur.advance();
    } else if ((c == '+' || c == '-') && !cur.done()) {
      // Sign is part of the number only right after an exponent marker.
      const std::size_t len = cur.pos();
      const char prev = len > 0 ? cur.slice(len - 1)[0] : '\0';
      if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
        cur.advance();
      } else {
        return;
      }
    } else {
      return;
    }
  }
}

}  // namespace

TokenizedSource tokenize(std::string_view source) {
  TokenizedSource out;
  Cursor cur{source};

  auto push = [&out](TokKind kind, std::string text, int line, int col) {
    out.tokens.push_back(Token{kind, std::move(text), line, col});
  };

  while (!cur.done()) {
    const char c = cur.peek();
    const int line = cur.line();
    const int col = cur.col();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v') {
      cur.advance();
      continue;
    }

    // Line comment.
    if (c == '/' && cur.peek(1) == '/') {
      const bool own = !cur.line_has_code();
      cur.advance();
      cur.advance();
      const std::size_t start = cur.pos();
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      out.comments.push_back(Comment{std::string{cur.slice(start)}, line, own});
      continue;
    }

    // Block comment (may span lines; suppressions anchor to the END line so
    // `/* ... */ code` on one line behaves like a trailing comment).
    if (c == '/' && cur.peek(1) == '*') {
      const bool own = !cur.line_has_code();
      cur.advance();
      cur.advance();
      const std::size_t start = cur.pos();
      std::size_t end = start;
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          end = cur.pos();
          cur.advance();
          cur.advance();
          break;
        }
        end = cur.pos() + 1;
        cur.advance();
      }
      out.comments.push_back(
          Comment{std::string{source.substr(start, end - start)}, cur.line(), own});
      continue;
    }

    // Preprocessor directive: only when '#' is the first non-space token on
    // the line (a '#' mid-line would be a stray punctuator).
    if (c == '#' && !cur.line_has_code()) {
      cur.mark_code();
      cur.advance();
      out.directives.push_back(Directive{consume_directive(cur), line});
      continue;
    }

    cur.mark_code();

    if (is_ident_start(c)) {
      const std::size_t start = cur.pos();
      while (!cur.done() && is_ident_char(cur.peek())) cur.advance();
      std::string text{cur.slice(start)};
      if (cur.peek() == '"' && is_raw_string_prefix(text)) {
        cur.advance();  // opening quote
        consume_raw_string(cur);
        push(TokKind::kString, std::move(text), line, col);
      } else if (cur.peek() == '"' || cur.peek() == '\'') {
        // Encoding prefix on an ordinary literal (u8"...", L'x').
        const char quote = cur.advance();
        consume_quoted(cur, quote);
        push(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(text), line, col);
      } else {
        push(TokKind::kIdentifier, std::move(text), line, col);
      }
      continue;
    }

    if (is_digit(c) || (c == '.' && is_digit(cur.peek(1)))) {
      const std::size_t start = cur.pos();
      cur.advance();
      consume_number(cur);
      push(TokKind::kNumber, std::string{cur.slice(start)}, line, col);
      continue;
    }

    if (c == '"') {
      cur.advance();
      consume_quoted(cur, '"');
      push(TokKind::kString, "", line, col);
      continue;
    }

    if (c == '\'') {
      cur.advance();
      consume_quoted(cur, '\'');
      push(TokKind::kChar, "", line, col);
      continue;
    }

    // '::' as a single token so rules can tell scope resolution from the
    // range-for colon.
    if (c == ':' && cur.peek(1) == ':') {
      cur.advance();
      cur.advance();
      push(TokKind::kPunct, "::", line, col);
      continue;
    }

    cur.advance();
    push(TokKind::kPunct, std::string(1, c), line, col);
  }

  return out;
}

}  // namespace blam::lint
