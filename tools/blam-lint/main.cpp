// blam-lint CLI. With no path arguments it scans the standard source roots
// (src, bench, examples, tests, tools) under --root; exit status is nonzero
// iff any unsuppressed finding exists, so CI can gate on it directly.
#include "blam-lint/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root.generic_string());
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::recursive_directory_iterator it{root, ec}, end; it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file(ec) && lintable(it->path())) {
      files.push_back(it->path().generic_string());
    }
  }
}

void print_usage() {
  std::printf(
      "usage: blam-lint [--root DIR] [--json] [--show-suppressed] [--list-rules] [paths...]\n"
      "\n"
      "Lints the given files/directories (default: src bench examples tests tools\n"
      "under --root, which defaults to the current directory). Exits 1 when any\n"
      "unsuppressed finding remains, 2 on usage/IO errors.\n"
      "\n"
      "Suppress a finding inline, with a mandatory justification:\n"
      "  // blam-lint: allow(D2) -- lookup-only by id; never iterated\n"
      "A trailing comment covers its own line; a comment on its own line covers\n"
      "the next line.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool show_suppressed = false;
  std::string root = ".";
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const auto& info : blam::lint::rule_infos()) {
        std::printf("%s  %s\n", info.id.c_str(), info.summary.c_str());
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "blam-lint: --root needs an argument\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "blam-lint: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      args.push_back(arg);
    }
  }

  std::vector<std::string> files;
  if (args.empty()) {
    for (const char* dir : {"src", "bench", "examples", "tests", "tools"}) {
      collect(fs::path{root} / dir, files);
    }
  } else {
    for (const std::string& a : args) collect(fs::path{a}, files);
  }
  // Deterministic report order regardless of directory enumeration order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  if (files.empty()) {
    std::fprintf(stderr, "blam-lint: no lintable files found (root: %s)\n", root.c_str());
    return 2;
  }

  std::vector<blam::lint::Finding> all;
  for (const std::string& file : files) {
    try {
      auto findings = blam::lint::lint_file(file);
      all.insert(all.end(), std::make_move_iterator(findings.begin()),
                 std::make_move_iterator(findings.end()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  std::size_t active = 0;
  std::size_t suppressed = 0;
  for (const auto& f : all) {
    f.suppressed ? ++suppressed : ++active;
  }

  if (json) {
    std::vector<blam::lint::Finding> report;
    std::copy_if(all.begin(), all.end(), std::back_inserter(report),
                 [show_suppressed](const auto& f) { return show_suppressed || !f.suppressed; });
    std::fputs(blam::lint::to_json(report).c_str(), stdout);
  } else {
    for (const auto& f : all) {
      if (f.suppressed && !show_suppressed) continue;
      std::printf("%s\n", blam::lint::to_string(f).c_str());
    }
    std::printf("blam-lint: %zu file(s), %zu finding(s), %zu suppressed\n", files.size(), active,
                suppressed);
  }
  return active == 0 ? 0 : 1;
}
