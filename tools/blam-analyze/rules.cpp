// Cross-file rules on top of the structure pass. The K1 engine builds one
// "serialization group" per checkpoint root (a class with a
// checkpoint_state/restore_state or checkpoint/restore member pair, or the
// subject of a free StateWriter/StateReader serializer), chases member
// accesses and member-function calls to a fixpoint, and then requires every
// declared data member of every class in the group to either appear in the
// group's serialization bodies or carry a `// blam-ckpt: skip` exemption.
// Coverage is name-based on purpose: it is coarse enough to survive locals,
// structured bindings and snapshot structs without a real type checker, yet
// a freshly added member can never be name-mentioned by old code, so
// checkpoint drift always lands in the findings.
#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "blam-analyze/analyze.hpp"
#include "blam-analyze/annotations.hpp"

namespace blam::analyze {

namespace {

using lint::Finding;
using lint::TokKind;
using lint::Token;

// ---------------------------------------------------------------------------
// Path helpers (the blam-lint conventions: forward slashes, suffix-based
// scoping so absolute and repo-relative invocations agree).
// ---------------------------------------------------------------------------

[[nodiscard]] bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] bool in_dir(const std::string& path, std::string_view dir) {
  const std::string needle = std::string{dir} + "/";
  return path.rfind(needle, 0) == 0 || path.find("/" + needle) != std::string::npos;
}

[[nodiscard]] bool is_rng_authority(const std::string& path) {
  return ends_with(path, "src/common/rng.hpp") || ends_with(path, "src/common/rng.cpp") ||
         path == "common/rng.hpp" || path == "common/rng.cpp";
}

[[nodiscard]] std::string last_component(const std::string& key) {
  const std::size_t pos = key.rfind("::");
  return pos == std::string::npos ? key : key.substr(pos + 2);
}

void add_finding(std::vector<Finding>& out, std::string rule, const std::string& path, int line,
                 int col, std::string message) {
  Finding f;
  f.rule = std::move(rule);
  f.path = path;
  f.line = line;
  f.col = col;
  f.message = std::move(message);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Shared indexes over the project.
// ---------------------------------------------------------------------------

struct ClassRef {
  const ClassInfo* info;
  const TranslationUnit* unit;
};

struct Indexes {
  std::map<std::string, std::vector<ClassRef>> by_key;
  std::map<std::string, std::vector<std::string>> keys_by_last;
  /// (last class-name component + '\n' + function name) -> definitions.
  std::map<std::string, std::vector<const FunctionDef*>> defs;
  std::map<const FunctionDef*, const TranslationUnit*> def_unit;
  /// base last-component -> keys of classes listing it as a base.
  std::map<std::string, std::vector<std::string>> derived;
};

[[nodiscard]] Indexes build_indexes(const Project& project) {
  Indexes ix;
  for (const TranslationUnit& unit : project.units) {
    for (const ClassInfo& cls : unit.classes) {
      ix.by_key[cls.name].push_back(ClassRef{&cls, &unit});
      ix.keys_by_last[last_component(cls.name)].push_back(cls.name);
      for (const std::string& base : cls.bases) {
        ix.derived[last_component(base)].push_back(cls.name);
      }
    }
    for (const FunctionDef& def : unit.functions) {
      const std::string owner = def.class_name.empty() ? "" : last_component(def.class_name);
      ix.defs[owner + "\n" + def.name].push_back(&def);
      ix.def_unit[&def] = &unit;
    }
  }
  return ix;
}

[[nodiscard]] bool is_builtinish(const std::string& t) {
  static const std::set<std::string> kBuiltin = {
      "void",     "bool",     "char",    "int",      "short",    "long",     "float",
      "double",   "signed",   "unsigned", "auto",    "size_t",   "ssize_t",  "ptrdiff_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "int8_t",  "int16_t",  "int32_t",
      "int64_t",  "uintptr_t", "intptr_t", "wchar_t", "char8_t", "char16_t", "char32_t"};
  return kBuiltin.contains(t);
}

/// Identifier chains ("std::optional", "AdrController") appearing in a
/// rendered type string, in order.
[[nodiscard]] std::vector<std::string> type_chains(const std::string& type) {
  std::vector<std::string> chains;
  std::string cur;
  for (std::size_t i = 0; i < type.size(); ++i) {
    const char c = type[i];
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      cur += c;
      continue;
    }
    if (c == ':' && i + 1 < type.size() && type[i + 1] == ':' && !cur.empty()) {
      cur += "::";
      ++i;
      continue;
    }
    if (!cur.empty()) chains.push_back(cur);
    cur.clear();
  }
  if (!cur.empty()) chains.push_back(cur);
  return chains;
}

/// Resolves the class keys a member/parameter type refers to. `owner` is
/// the class whose scope the type was written in ("" for free functions);
/// nested names resolve through the owner's lexical parents, then by
/// unambiguous last-component match.
[[nodiscard]] std::vector<std::string> resolve_type(const Indexes& ix, const std::string& owner,
                                                    const std::string& type) {
  std::vector<std::string> out;
  for (const std::string& chain : type_chains(type)) {
    if (chain.rfind("std::", 0) == 0 || chain == "std") continue;
    if (is_builtinish(chain)) continue;
    std::string hit;
    if (ix.by_key.contains(chain)) {
      hit = chain;
    } else {
      for (std::string prefix = owner; !prefix.empty() && hit.empty();) {
        const std::string candidate = prefix + "::" + chain;
        if (ix.by_key.contains(candidate)) hit = candidate;
        const std::size_t pos = prefix.rfind("::");
        prefix = pos == std::string::npos ? std::string{} : prefix.substr(0, pos);
      }
      if (hit.empty()) {
        const auto it = ix.keys_by_last.find(last_component(chain));
        if (it != ix.keys_by_last.end()) {
          std::vector<std::string> matches;
          for (const std::string& key : it->second) {
            if (key == chain || ends_with(key, "::" + chain)) matches.push_back(key);
          }
          if (matches.size() == 1) hit = matches.front();
        }
      }
    }
    if (!hit.empty() && std::find(out.begin(), out.end(), hit) == out.end()) {
      out.push_back(hit);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// K1: checkpoint coverage.
// ---------------------------------------------------------------------------

struct Group {
  std::set<std::string> classes;
  std::set<const FunctionDef*> bodies;
  std::set<std::string> idents;  // identifier tokens across all bodies
};

[[nodiscard]] bool declares_member_fn(const Indexes& ix, const std::string& key,
                                      const std::string& name) {
  const auto it = ix.by_key.find(key);
  if (it == ix.by_key.end()) return false;
  for (const ClassRef& ref : it->second) {
    const auto& fns = ref.info->member_functions;
    if (std::find(fns.begin(), fns.end(), name) != fns.end()) return true;
  }
  return false;
}

/// Looks up data member `name` on `key`. Members exempted with
/// `blam-ckpt: skip` are reported as absent: they are declared out of
/// checkpoint coverage, so access chains through them must not pull their
/// type into a serialization group (a config pointer read during a
/// restore-rebuild does not make the whole config checkpoint-covered).
[[nodiscard]] bool has_data_member(const Indexes& ix, const std::string& key,
                                   const std::string& name, std::string* type_out) {
  const auto it = ix.by_key.find(key);
  if (it == ix.by_key.end()) return false;
  for (const ClassRef& ref : it->second) {
    for (const MemberDecl& m : ref.info->members) {
      if (m.name == name && !m.ckpt_skip) {
        if (type_out != nullptr) *type_out = m.type;
        return true;
      }
    }
  }
  return false;
}

/// All transitive derived classes of `key` (by last-component base match).
void collect_derived(const Indexes& ix, const std::string& key, std::set<std::string>& out) {
  const auto it = ix.derived.find(last_component(key));
  if (it == ix.derived.end()) return;
  for (const std::string& d : it->second) {
    if (out.insert(d).second) collect_derived(ix, d, out);
  }
}

class K1Engine {
 public:
  K1Engine(const Project& project, const Indexes& ix) : project_{project}, ix_{ix} {}

  void run(std::vector<Finding>& findings) {
    discover_roots();
    for (Group& g : groups_) close_group(g);
    if (std::getenv("BLAM_ANALYZE_DEBUG") != nullptr) {
      for (const Group& g : groups_) {
        std::fprintf(stderr, "group:");
        for (const auto& c : g.classes) std::fprintf(stderr, " %s", c.c_str());
        std::fprintf(stderr, "\n  bodies:");
        for (const FunctionDef* d : g.bodies) {
          std::fprintf(stderr, " %s::%s", d->class_name.c_str(), d->name.c_str());
        }
        std::fprintf(stderr, "\n");
      }
    }
    evaluate(findings);
  }

 private:
  const Project& project_;
  const Indexes& ix_;
  std::vector<Group> groups_;

  static constexpr std::array<std::string_view, 2> kPairA = {"checkpoint_state",
                                                             "restore_state"};
  static constexpr std::array<std::string_view, 2> kPairB = {"checkpoint", "restore"};

  [[nodiscard]] std::vector<const FunctionDef*> defs_of(const std::string& key,
                                                        const std::string& name) const {
    const auto it = ix_.defs.find(last_component(key) + "\n" + name);
    return it == ix_.defs.end() ? std::vector<const FunctionDef*>{} : it->second;
  }

  void discover_roots() {
    // (a) classes with a serialization member pair.
    for (const auto& [key, refs] : ix_.by_key) {
      for (const auto& pair : {kPairA, kPairB}) {
        if (!declares_member_fn(ix_, key, std::string{pair[0]}) ||
            !declares_member_fn(ix_, key, std::string{pair[1]})) {
          continue;
        }
        Group g;
        g.classes.insert(key);
        for (const auto& fn : pair) {
          for (const FunctionDef* def : defs_of(key, std::string{fn})) g.bodies.insert(def);
        }
        groups_.push_back(std::move(g));
      }
    }
    // (b) free functions with a StateWriter/StateReader parameter: every
    // other class-typed parameter is a serialized subject.
    for (const TranslationUnit& unit : project_.units) {
      for (const FunctionDef& def : unit.functions) {
        if (!def.class_name.empty()) continue;
        const bool codec = std::any_of(def.params.begin(), def.params.end(), [](const auto& p) {
          return p.type.find("StateWriter") != std::string::npos ||
                 p.type.find("StateReader") != std::string::npos;
        });
        if (!codec) continue;
        for (const ParamDecl& p : def.params) {
          if (p.type.find("StateWriter") != std::string::npos ||
              p.type.find("StateReader") != std::string::npos) {
            continue;
          }
          for (const std::string& key : resolve_type(ix_, "", p.type)) {
            Group g;
            g.classes.insert(key);
            g.bodies.insert(&def);
            groups_.push_back(std::move(g));
          }
        }
      }
    }
  }

  /// Adds the definitions of member function `name` on `key` — and on any
  /// derived class overriding it (virtual dispatch) — to the group.
  bool attach_member_fn(Group& g, const std::string& key, const std::string& name) {
    bool changed = false;
    std::set<std::string> targets{key};
    collect_derived(ix_, key, targets);
    for (const std::string& t : targets) {
      if (t != key && !declares_member_fn(ix_, t, name)) continue;
      for (const FunctionDef* def : defs_of(t, name)) {
        changed |= g.bodies.insert(def).second;
      }
      if (declares_member_fn(ix_, t, name)) changed |= g.classes.insert(t).second;
    }
    return changed;
  }

  /// The class key whose data member `name` an unqualified mention inside
  /// `def` refers to — the enclosing class, if it declares one (exempted or
  /// not). nullopt for free functions and for names the owner lacks.
  [[nodiscard]] std::optional<std::string> owning_class_of(const FunctionDef* def,
                                                           const std::string& name) const {
    if (def->class_name.empty()) return std::nullopt;
    for (const std::string& key : resolve_type(ix_, "", def->class_name)) {
      const auto it = ix_.by_key.find(key);
      if (it == ix_.by_key.end()) continue;
      for (const ClassRef& ref : it->second) {
        for (const MemberDecl& m : ref.info->members) {
          if (m.name == name) return key;
        }
      }
    }
    return std::nullopt;
  }

  bool scan_body(Group& g, const FunctionDef* def) {
    const TranslationUnit* unit = ix_.def_unit.at(def);
    const std::vector<Token>& toks = unit->src.tokens;
    bool changed = false;

    // identifier union
    for (std::size_t i = def->body_begin; i < def->body_end && i < toks.size(); ++i) {
      if (toks[i].kind == TokKind::kIdentifier) {
        changed |= g.idents.insert(toks[i].text).second;
      }
    }

    // typed parameters of this body
    std::map<std::string, std::string> vars;
    for (const ParamDecl& p : def->params) {
      if (p.name.empty()) continue;
      if (p.type.find("StateWriter") != std::string::npos ||
          p.type.find("StateReader") != std::string::npos) {
        continue;
      }
      const auto keys = resolve_type(ix_, def->class_name, p.type);
      if (keys.size() == 1) vars[p.name] = keys.front();
    }

    // member-access chains: var.f / var->f / member_.f / member_->f
    for (std::size_t i = def->body_begin; i + 1 < def->body_end && i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdentifier) continue;
      std::size_t next = 0;
      if (toks[i + 1].text == ".") {
        next = i + 2;
      } else if (toks[i + 1].text == "-" && i + 2 < toks.size() && toks[i + 2].text == ">") {
        next = i + 3;
      } else {
        continue;
      }
      std::string cur;
      if (const auto v = vars.find(toks[i].text); v != vars.end()) {
        cur = v->second;
      } else if (const auto owner = owning_class_of(def, toks[i].text); owner.has_value()) {
        // Unqualified member access in a member-function body binds to the
        // enclosing class, never to whichever group class happens to share
        // the member name (Simulator::queue_ vs DegradationService::queue_).
        // A skip-exempted member leaves `cur` empty: the chain is opaque.
        std::string type;
        if (has_data_member(ix_, *owner, toks[i].text, &type)) {
          const auto keys = resolve_type(ix_, *owner, type);
          if (keys.size() == 1) cur = keys.front();
        }
      } else {
        for (const std::string& key : g.classes) {
          std::string type;
          if (has_data_member(ix_, key, toks[i].text, &type)) {
            const auto keys = resolve_type(ix_, key, type);
            if (keys.size() == 1) cur = keys.front();
            break;
          }
        }
      }
      while (!cur.empty() && next < toks.size() && next < def->body_end &&
             toks[next].kind == TokKind::kIdentifier) {
        const std::string& field = toks[next].text;
        if (declares_member_fn(ix_, cur, field)) {
          changed |= g.classes.insert(cur).second;
          changed |= attach_member_fn(g, cur, field);
          break;
        }
        std::string type;
        if (!has_data_member(ix_, cur, field, &type)) break;
        changed |= g.classes.insert(cur).second;
        const auto keys = resolve_type(ix_, cur, type);
        if (keys.size() != 1) break;
        cur = keys.front();
        if (next + 1 < toks.size() && toks[next + 1].text == ".") {
          next += 2;
        } else if (next + 2 < toks.size() && toks[next + 1].text == "-" &&
                   toks[next + 2].text == ">") {
          next += 3;
        } else {
          break;
        }
      }
    }
    return changed;
  }

  void close_group(Group& g) {
    bool changed = true;
    while (changed) {
      changed = false;
      const std::vector<const FunctionDef*> bodies{g.bodies.begin(), g.bodies.end()};
      for (const FunctionDef* def : bodies) changed |= scan_body(g, def);
      // Deliberately no name-only member-type join: a type enters the group
      // only as a root or through an actual access chain in a serialization
      // body. Name-mention joins drag pure config structs (scenario inputs,
      // rebuilt on restore) into coverage and bury real drift in noise.
    }
  }

  void evaluate(std::vector<Finding>& findings) const {
    struct Verdict {
      const TranslationUnit* unit;
      const MemberDecl* member;
      std::string cls;
      bool covered{false};
    };
    std::map<std::string, Verdict> verdicts;
    for (const Group& g : groups_) {
      for (const std::string& key : g.classes) {
        const auto it = ix_.by_key.find(key);
        if (it == ix_.by_key.end()) continue;
        for (const ClassRef& ref : it->second) {
          for (const MemberDecl& m : ref.info->members) {
            const std::string id =
                ref.unit->path + ":" + std::to_string(m.line) + ":" + key + "::" + m.name;
            auto [v, inserted] = verdicts.try_emplace(id, Verdict{ref.unit, &m, key, false});
            (void)inserted;
            v->second.covered |= m.ckpt_skip || g.idents.contains(m.name);
          }
        }
      }
    }
    for (const auto& [id, v] : verdicts) {
      if (v.covered) continue;
      add_finding(findings, "K1", v.unit->path, v.member->line, 1,
                  v.cls + "::" + v.member->name +
                      " is reachable from a checkpoint root but never serialized: write it "
                      "through state_codec in the checkpoint/restore path, or exempt it with "
                      "`// blam-ckpt: skip -- <reason>` if it is rebuilt on restore");
    }
  }
};

// ---------------------------------------------------------------------------
// S2: shard-state escape.
// ---------------------------------------------------------------------------

[[nodiscard]] const char* static_kind_name(StaticDecl::Kind kind) {
  switch (kind) {
    case StaticDecl::Kind::kGlobal: return "namespace-scope variable";
    case StaticDecl::Kind::kNamespaceStatic: return "namespace-scope static";
    case StaticDecl::Kind::kFunctionLocal: return "function-local static";
    case StaticDecl::Kind::kClassStatic: return "static data member";
  }
  return "static";
}

void rule_s2(const Project& project, std::vector<Finding>& findings) {
  std::string root;
  for (const TranslationUnit& unit : project.units) {
    if (ends_with(unit.path, "src/sim/shard_engine.cpp")) root = unit.path;
  }
  if (root.empty()) return;  // nothing shard-reachable in this file set
  const std::vector<std::string> closure = include_closure(project, root);
  const std::set<std::string> in_closure{closure.begin(), closure.end()};
  for (const TranslationUnit& unit : project.units) {
    if (!in_closure.contains(unit.path)) continue;
    for (const StaticDecl& s : unit.statics) {
      if (s.is_const || s.is_atomic || s.shared_annotated) continue;
      std::string message = std::string{"mutable "} + static_kind_name(s.kind) + " '" + s.name +
                            "' is reachable from the shard workers (include closure of "
                            "src/sim/shard_engine.cpp): shared mutable state breaks cross-shard "
                            "determinism; make it const or std::atomic, or annotate "
                            "`// blam-shared: <sync mechanism> -- <reason>`";
      if (s.is_thread_local) {
        message += " (thread_local is not enough: one worker thread serves many shards)";
      }
      add_finding(findings, "S2", unit.path, s.line, 1, std::move(message));
    }
  }
}

// ---------------------------------------------------------------------------
// R1: RNG-salt registry.
// ---------------------------------------------------------------------------

[[nodiscard]] std::optional<std::uint64_t> parse_literal(const std::string& text) {
  std::string digits;
  for (const char c : text) {
    if (c == '\'') continue;
    digits += c;
  }
  while (!digits.empty()) {
    const char c = digits.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'z' || c == 'Z') {
      digits.pop_back();
    } else {
      break;
    }
  }
  if (digits.empty()) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(digits, &used, 0);
    if (used != digits.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct SaltRegistry {
  bool present{false};
  std::map<std::uint64_t, std::string> by_value;
};

[[nodiscard]] SaltRegistry parse_salt_registry(const Project& project,
                                               std::vector<Finding>& findings) {
  SaltRegistry reg;
  for (const TranslationUnit& unit : project.units) {
    if (!is_rng_authority(unit.path) || !ends_with(unit.path, ".hpp")) continue;
    const std::vector<Token>& toks = unit.src.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].text != "namespace" || toks[i + 1].text != "salt" || toks[i + 2].text != "{") {
        continue;
      }
      reg.present = true;
      int depth = 0;
      for (std::size_t j = i + 2; j < toks.size(); ++j) {
        if (toks[j].text == "{") ++depth;
        if (toks[j].text == "}" && --depth == 0) break;
        if (toks[j].text != "=" || j < 1 || j + 2 >= toks.size()) continue;
        if (toks[j - 1].kind != TokKind::kIdentifier ||
            toks[j + 1].kind != TokKind::kNumber || toks[j + 2].text != ";") {
          continue;
        }
        const auto value = parse_literal(toks[j + 1].text);
        if (!value.has_value()) continue;
        const auto [it, inserted] = reg.by_value.try_emplace(*value, toks[j - 1].text);
        if (!inserted) {
          add_finding(findings, "R1", unit.path, toks[j - 1].line, toks[j - 1].col,
                      "duplicate salt value " + toks[j + 1].text + ": '" + toks[j - 1].text +
                          "' collides with '" + it->second +
                          "'; two forks with the same salt draw identical streams");
        }
      }
    }
  }
  return reg;
}

void rule_r1(const Project& project, std::vector<Finding>& findings) {
  SaltRegistry reg = parse_salt_registry(project, findings);
  for (const TranslationUnit& unit : project.units) {
    if (!in_dir(unit.path, "src") || is_rng_authority(unit.path)) continue;
    const std::vector<Token>& toks = unit.src.tokens;
    std::set<std::size_t> flagged;

    const auto flag_literal = [&](std::size_t idx, const std::string& context) {
      if (!flagged.insert(idx).second) return;
      const auto value = parse_literal(toks[idx].text);
      std::string message;
      if (value.has_value() && reg.by_value.contains(*value)) {
        message = "literal salt " + toks[idx].text + " in " + context + " is registered as salt::" +
                  reg.by_value.at(*value) + "; spell it as blam::salt::" + reg.by_value.at(*value);
      } else if (reg.present) {
        message = "unregistered literal salt " + toks[idx].text + " in " + context +
                  "; add a named constant to the salt registry in src/common/rng.hpp and use it";
      } else {
        message = "literal salt " + toks[idx].text + " in " + context +
                  "; src/common/rng.hpp has no salt registry (namespace salt) to register it in";
      }
      add_finding(findings, "R1", unit.path, toks[idx].line, toks[idx].col, std::move(message));
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      // rng.fork(<literal>)
      if (i + 2 < toks.size() && toks[i].kind == TokKind::kIdentifier && toks[i].text == "fork" &&
          toks[i + 1].text == "(" && toks[i + 2].kind == TokKind::kNumber) {
        flag_literal(i + 2, "Rng::fork");
      }
      // Rng name{seed, <literal>} / Rng{seed, <literal>} — the stream salt
      // of a direct construction.
      if (toks[i].kind == TokKind::kIdentifier && toks[i].text == "Rng" &&
          (i == 0 || (toks[i - 1].text != "class" && toks[i - 1].text != "::"))) {
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) ++j;
        if (j < toks.size() && (toks[j].text == "{" || toks[j].text == "(")) {
          const std::string close = toks[j].text == "{" ? "}" : ")";
          const std::string open = toks[j].text;
          int depth = 0;
          std::size_t arg = 0;
          bool at_arg_start = true;
          for (std::size_t k = j; k < toks.size(); ++k) {
            const std::string& x = toks[k].text;
            if (x == open || x == "(" || x == "{" || x == "[") ++depth;
            if (x == close || x == ")" || x == "}" || x == "]") {
              if (--depth == 0) break;
              continue;
            }
            if (depth == 1 && x == ",") {
              ++arg;
              at_arg_start = true;
              continue;
            }
            if (depth == 1 && at_arg_start) {
              if (arg >= 1 && toks[k].kind == TokKind::kNumber) {
                flag_literal(k, "Rng{seed, stream} construction");
              }
              at_arg_start = false;
            }
          }
        }
      }
      // A hex literal respelling a registered salt outside the registry.
      // Values below 0x100 are excluded: byte masks (0x00, 0xff) are
      // everywhere and are never stream salts in disguise.
      if (toks[i].kind == TokKind::kNumber &&
          (toks[i].text.rfind("0x", 0) == 0 || toks[i].text.rfind("0X", 0) == 0)) {
        const auto value = parse_literal(toks[i].text);
        if (value.has_value() && *value >= 0x100 && reg.by_value.contains(*value) &&
            !flagged.contains(i)) {
          flagged.insert(i);
          add_finding(findings, "R1", unit.path, toks[i].line, toks[i].col,
                      "hex literal " + toks[i].text + " respells registered salt salt::" +
                          reg.by_value.at(*value) + "; use the named constant so the stream "
                          "derivation stays greppable");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// A1 + suppressions (the blam-lint semantics under this tool's marker).
// ---------------------------------------------------------------------------

struct Suppression {
  std::set<std::string> rules;
  std::string reason;
  int first_line{0};
  int last_line{0};
};

[[nodiscard]] bool known_rule(const std::string& id) {
  const auto& infos = rule_infos();
  return std::any_of(infos.begin(), infos.end(),
                     [&id](const lint::RuleInfo& r) { return r.id == id && r.id != "A1"; });
}

void parse_suppressions(const TranslationUnit& unit, std::vector<Suppression>& sups,
                        std::vector<Finding>& findings) {
  static constexpr std::string_view kMarker = "blam-analyze:";
  for (const lint::Comment& c : unit.src.comments) {
    const std::size_t mark = c.text.find(kMarker);
    if (mark == std::string::npos) continue;
    std::string rest = c.text.substr(mark + kMarker.size());
    const std::size_t allow = rest.find("allow(");
    const std::size_t close = rest.find(')', allow == std::string::npos ? 0 : allow);
    if (allow == std::string::npos || close == std::string::npos) {
      add_finding(findings, "A1", unit.path, c.line, 1,
                  "malformed suppression: expected `blam-analyze: allow(RULE[,RULE...]) "
                  "-- reason`");
      continue;
    }
    Suppression sup;
    std::stringstream list{rest.substr(allow + 6, close - allow - 6)};
    std::string id;
    bool ok = true;
    while (std::getline(list, id, ',')) {
      id = detail::trim(id);
      if (id.empty()) continue;
      if (!known_rule(id)) {
        add_finding(findings, "A1", unit.path, c.line, 1,
                    "suppression names unknown rule '" + id + "'");
        ok = false;
        break;
      }
      sup.rules.insert(id);
    }
    if (!ok) continue;
    if (sup.rules.empty()) {
      add_finding(findings, "A1", unit.path, c.line, 1, "suppression allows no rules");
      continue;
    }
    const std::size_t dash = rest.find("--", close);
    const std::string reason =
        dash == std::string::npos ? std::string{} : detail::trim(rest.substr(dash + 2));
    if (reason.empty()) {
      add_finding(findings, "A1", unit.path, c.line, 1,
                  "suppression has no justification: add `-- <reason>`");
      continue;
    }
    sup.reason = reason;
    sup.first_line = c.own_line ? c.line + 1 : c.line;
    sup.last_line = sup.first_line;
    sups.push_back(std::move(sup));
  }
}

}  // namespace

const std::vector<lint::RuleInfo>& rule_infos() {
  static const std::vector<lint::RuleInfo> kInfos = {
      {"K1", "checkpoint coverage: unserialized data member on a checkpoint-reachable type"},
      {"S2", "shard-state escape: mutable static/global reachable from shard_engine.cpp"},
      {"R1", "RNG-salt registry: literal fork/stream salts must come from blam::salt"},
      {"A1", "malformed blam-ckpt/blam-shared/allow annotation (not itself suppressible)"},
  };
  return kInfos;
}

std::vector<std::string> include_closure(const Project& project, const std::string& root_path) {
  std::map<std::string, const TranslationUnit*> by_path;
  for (const TranslationUnit& unit : project.units) by_path[unit.path] = &unit;

  const auto resolve = [&by_path](const std::string& includer,
                                  const std::string& target) -> std::string {
    for (const auto& [path, unit] : by_path) {
      (void)unit;
      if (path == "src/" + target || ends_with(path, "/src/" + target)) return path;
    }
    const std::size_t slash = includer.rfind('/');
    if (slash != std::string::npos) {
      const std::string sibling = includer.substr(0, slash + 1) + target;
      if (by_path.contains(sibling)) return sibling;
    }
    return by_path.contains(target) ? target : std::string{};
  };

  std::string root;
  for (const auto& [path, unit] : by_path) {
    (void)unit;
    if (path == root_path || ends_with(path, "/" + root_path)) root = path;
  }
  if (root.empty()) return {};

  std::set<std::string> visited;
  std::vector<std::string> queue{root};
  while (!queue.empty()) {
    const std::string path = queue.back();
    queue.pop_back();
    if (!visited.insert(path).second) continue;
    const TranslationUnit* unit = by_path.at(path);
    for (const IncludeDecl& inc : unit->includes) {
      if (!inc.quoted) continue;
      const std::string hit = resolve(path, inc.target);
      if (!hit.empty() && !visited.contains(hit)) queue.push_back(hit);
    }
    // A closure header's same-stem .cpp runs inside the shard workers even
    // though nothing #includes it: pair it in.
    for (const std::string_view ext : {".hpp", ".h"}) {
      if (!ends_with(path, ext)) continue;
      const std::string sibling = path.substr(0, path.size() - ext.size()) + ".cpp";
      if (by_path.contains(sibling) && !visited.contains(sibling)) queue.push_back(sibling);
    }
  }
  return {visited.begin(), visited.end()};
}

std::vector<lint::Finding> analyze_project(const Project& project) {
  std::vector<Finding> findings;
  const Indexes ix = build_indexes(project);

  K1Engine k1{project, ix};
  k1.run(findings);
  rule_s2(project, findings);
  rule_r1(project, findings);

  std::map<std::string, std::vector<Suppression>> sups_by_path;
  for (const TranslationUnit& unit : project.units) {
    for (const detail::AnnotationIssue& issue : detail::parse_annotations(unit.src).issues) {
      add_finding(findings, "A1", unit.path, issue.line, 1, issue.message);
    }
    parse_suppressions(unit, sups_by_path[unit.path], findings);
  }

  for (Finding& f : findings) {
    if (f.rule == "A1") continue;
    const auto it = sups_by_path.find(f.path);
    if (it == sups_by_path.end()) continue;
    for (const Suppression& sup : it->second) {
      if (f.line >= sup.first_line && f.line <= sup.last_line && sup.rules.contains(f.rule)) {
        f.suppressed = true;
        f.suppress_reason = sup.reason;
        break;
      }
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace blam::analyze
