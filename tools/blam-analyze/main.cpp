// blam-analyze CLI. Reads every source file under src/ (the default scope:
// cross-file rules only make sense over the real simulator tree; test and
// bench fixtures deliberately contain rule-violating code), builds the
// project-wide structure tables, and runs K1/S2/R1/A1. Exit status is
// nonzero iff any unsuppressed finding exists, so CI can gate on it.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blam-analyze/analyze.hpp"

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root.generic_string());
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::recursive_directory_iterator it{root, ec}, end; it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file(ec) && analyzable(it->path())) {
      files.push_back(it->path().generic_string());
    }
  }
}

void print_usage() {
  std::printf(
      "usage: blam-analyze [--root DIR] [--json] [--show-suppressed] [--list-rules] [paths...]\n"
      "\n"
      "Cross-file analysis of the BLAM simulator sources (default scope: src\n"
      "under --root, which defaults to the current directory). Exits 1 when any\n"
      "unsuppressed finding remains, 2 on usage/IO errors.\n"
      "\n"
      "Exempt a member from checkpoint coverage (K1) at its declaration:\n"
      "  int scratch_;  // blam-ckpt: skip -- rebuilt by recompute() on restore\n"
      "Document synchronization for shard-visible state (S2):\n"
      "  // blam-shared: guarded by g_mu -- hot counter, flushed per epoch\n"
      "Suppress any other finding, with a mandatory justification:\n"
      "  // blam-analyze: allow(R1) -- fixture exercises the unregistered path\n"
      "A trailing comment covers its own line; a comment on its own line covers\n"
      "the next line.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool show_suppressed = false;
  std::string root = ".";
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const auto& info : blam::analyze::rule_infos()) {
        std::printf("%s  %s\n", info.id.c_str(), info.summary.c_str());
      }
      return 0;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "blam-analyze: --root needs an argument\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "blam-analyze: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      args.push_back(arg);
    }
  }

  std::vector<std::string> files;
  if (args.empty()) {
    collect(fs::path{root} / "src", files);
  } else {
    for (const std::string& a : args) collect(fs::path{a}, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  if (files.empty()) {
    std::fprintf(stderr, "blam-analyze: no source files found (root: %s)\n", root.c_str());
    return 2;
  }

  blam::analyze::Project project;
  for (const std::string& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "blam-analyze: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    project.units.push_back(blam::analyze::parse_unit(file, buf.str()));
  }

  const std::vector<blam::lint::Finding> all = blam::analyze::analyze_project(project);

  std::size_t active = 0;
  std::size_t suppressed = 0;
  for (const auto& f : all) {
    f.suppressed ? ++suppressed : ++active;
  }

  if (json) {
    std::vector<blam::lint::Finding> report;
    std::copy_if(all.begin(), all.end(), std::back_inserter(report),
                 [show_suppressed](const auto& f) { return show_suppressed || !f.suppressed; });
    std::fputs(blam::lint::to_json(report).c_str(), stdout);
  } else {
    for (const auto& f : all) {
      if (f.suppressed && !show_suppressed) continue;
      std::printf("%s\n", blam::lint::to_string(f).c_str());
    }
    std::printf("blam-analyze: %zu file(s), %zu finding(s), %zu suppressed\n", files.size(),
                active, suppressed);
  }
  return active == 0 ? 0 : 1;
}
