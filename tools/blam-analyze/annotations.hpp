// Internal: parsed `blam-ckpt:` / `blam-shared:` annotation maps shared
// between the structure pass (which consumes well-formed annotations) and
// the rule pass (which reports malformed ones as A1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "blam-lint/lint.hpp"

namespace blam::analyze::detail {

struct CkptSkip {
  std::string reason;
};

struct SharedNote {
  std::string mechanism;
  std::string reason;
};

struct AnnotationIssue {
  int line{0};
  std::string message;
};

struct Annotations {
  /// Keyed by the source line the annotation covers (trailing comments
  /// cover their own line, own-line comments cover the next line — the
  /// blam-lint suppression convention).
  std::map<int, CkptSkip> ckpt;
  std::map<int, SharedNote> shared;
  std::vector<AnnotationIssue> issues;
};

[[nodiscard]] Annotations parse_annotations(const lint::TokenizedSource& src);

[[nodiscard]] std::string trim(std::string s);

}  // namespace blam::analyze::detail
