// blam-analyze — cross-file semantic analysis for the BLAM simulator.
//
// blam-lint (PR 5) matches token patterns inside one file; the invariants
// PRs 8-9 introduced are cross-file properties no single-TU pattern can
// check. This tool builds per-TU structure tables (class/struct member
// declarations, function definitions with body token ranges, namespace-scope
// and function-local statics, include directives) on top of the blam-lint
// tokenizer, then runs three project-wide rules:
//
//   K1  checkpoint coverage: every data member of every type reachable from
//       the "blamsim v1" / "blamledger v1" serialization entry points must
//       be written/restored through state_codec, or carry an explicit
//       `// blam-ckpt: skip -- <reason>` exemption on/above its declaration.
//   S2  shard-state escape: mutable namespace-scope or function-local
//       `static` state, non-const globals, and static data members in any
//       TU reachable from shard_engine.cpp's include closure (headers are
//       paired with their same-stem .cpp) are cross-shard determinism
//       hazards unless const/constexpr, std::atomic, or annotated
//       `// blam-shared: <sync mechanism> -- <reason>`.
//   R1  RNG-salt registry: every literal stream salt (Rng::fork argument,
//       Rng{seed, stream} stream argument) in src/ must be spelled as a
//       constant from the `blam::salt` registry in src/common/rng.hpp;
//       duplicate registry values and hex literals respelling a registered
//       salt are errors too.
//   A1  malformed annotation (bad skip/shared grammar, unknown rule in an
//       allow(), missing reason). Not itself suppressible — mirrors S1.
//
// Findings reuse blam::lint::Finding and the PR-5 suppression semantics
// under the tool's own marker: `// blam-analyze: allow(K1) -- reason`
// (trailing covers its own line, own-line covers the next line).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blam-lint/lint.hpp"

namespace blam::analyze {

/// One declared data member of a class/struct.
struct MemberDecl {
  std::string name;
  /// Joined declaration-type tokens, e.g. "std::optional<AdrController>".
  std::string type;
  int line{0};
  bool is_static{false};
  bool is_const{false};  // const or constexpr
  bool is_atomic{false};
  bool is_thread_local{false};
  bool is_bitfield{false};
  /// `// blam-ckpt: skip -- <reason>` on or directly above the declaration.
  bool ckpt_skip{false};
  std::string ckpt_reason;
};

struct ClassInfo {
  /// Nested classes are keyed through their lexical parent: "Rng::State".
  std::string name;
  int line{0};
  bool is_struct{false};
  std::vector<std::string> bases;  // names as written, qualifiers kept
  std::vector<MemberDecl> members;
  /// Names of member functions declared (or defined inline) in the class.
  std::vector<std::string> member_functions;
};

struct ParamDecl {
  std::string type;  // joined type tokens
  std::string name;  // "" for unnamed parameters
};

/// A function DEFINITION (has a body). Declarations without bodies are only
/// recorded as ClassInfo::member_functions entries.
struct FunctionDef {
  /// Qualifier as written for out-of-class definitions ("Node",
  /// "Rng::State"); "" for free functions; the enclosing class name for
  /// inline member definitions.
  std::string class_name;
  std::string name;
  int line{0};
  std::vector<ParamDecl> params;
  /// Token index range of the body, [begin, end): `{` .. `}` inclusive of
  /// neither brace's payload beyond the braces themselves.
  std::size_t body_begin{0};
  std::size_t body_end{0};
};

/// An S2 candidate: a declaration whose storage outlives one event and is
/// visible to more than one shard worker.
struct StaticDecl {
  enum class Kind {
    kGlobal,           // namespace-scope, no `static` (incl. anonymous ns)
    kNamespaceStatic,  // namespace-scope `static`
    kFunctionLocal,    // function-local `static`
    kClassStatic,      // static data member
  };
  Kind kind{Kind::kGlobal};
  std::string name;
  std::string type;
  int line{0};
  bool is_const{false};  // const or constexpr
  bool is_atomic{false};
  bool is_thread_local{false};
  /// `// blam-shared: <mechanism> -- <reason>` on or above the declaration.
  bool shared_annotated{false};
  std::string shared_mechanism;
  std::string shared_reason;
};

struct IncludeDecl {
  std::string target;  // as written between the delimiters
  int line{0};
  bool quoted{false};  // "" include (project); <> includes are ignored
};

/// Everything the structure pass extracts from one translation unit.
struct TranslationUnit {
  std::string path;  // normalized, repo-relative preferred
  lint::TokenizedSource src;
  std::vector<ClassInfo> classes;
  std::vector<FunctionDef> functions;
  std::vector<StaticDecl> statics;
  std::vector<IncludeDecl> includes;
};

/// Parses one in-memory source into its structure tables.
[[nodiscard]] TranslationUnit parse_unit(const std::string& path, std::string_view source);

struct Project {
  std::vector<TranslationUnit> units;
};

/// Computes the include closure of `root_path` (a unit path) over the
/// project's quoted includes. Targets resolve against a `src/`-style include
/// root and against the including file's directory; every closure header is
/// paired with its same-stem .cpp (a TU compiled against a closure header
/// runs inside the shard workers even though nothing #includes it).
/// Returns unit paths, sorted. Exposed for tests.
[[nodiscard]] std::vector<std::string> include_closure(const Project& project,
                                                       const std::string& root_path);

/// Runs K1/S2/R1/A1 over the whole project and applies suppressions.
/// Findings come back sorted by (path, line, col, rule); suppressed ones are
/// included with `suppressed == true`.
[[nodiscard]] std::vector<lint::Finding> analyze_project(const Project& project);

/// The registered rules, in report order.
[[nodiscard]] const std::vector<lint::RuleInfo>& rule_infos();

}  // namespace blam::analyze
