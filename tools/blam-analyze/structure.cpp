// Structure pass: turns one tokenized TU into symbol tables the cross-file
// rules consume. This is a declaration-level scanner, not a C++ parser: it
// walks namespace/class scopes, records data members, function definitions
// (with body token ranges), statics/globals, and `#include` targets, and it
// deliberately never descends into statement grammar — function bodies are
// skipped as balanced-brace blobs (a separate pass fishes `static` locals
// out of them). Tolerance beats precision here: on anything it cannot
// classify it skips to the next `;`/`}` rather than derailing.
#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <string>

#include "blam-analyze/analyze.hpp"
#include "blam-analyze/annotations.hpp"

namespace blam::analyze {

namespace detail {

std::string trim(std::string s) {
  const auto not_space = [](unsigned char ch) { return std::isspace(ch) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

Annotations parse_annotations(const lint::TokenizedSource& src) {
  Annotations out;
  for (const lint::Comment& c : src.comments) {
    const int target = c.own_line ? c.line + 1 : c.line;

    if (const std::size_t mark = c.text.find("blam-ckpt:"); mark != std::string::npos) {
      std::string rest = trim(c.text.substr(mark + 10));
      if (rest.rfind("skip", 0) != 0) {
        out.issues.push_back(
            {c.line, "malformed blam-ckpt annotation: expected `blam-ckpt: skip -- <reason>`"});
      } else {
        const std::size_t dash = rest.find("--", 4);
        const std::string reason =
            dash == std::string::npos ? std::string{} : trim(rest.substr(dash + 2));
        if (reason.empty()) {
          out.issues.push_back(
              {c.line, "blam-ckpt exemption has no justification: add `-- <reason>`"});
        } else {
          out.ckpt[target] = CkptSkip{reason};
        }
      }
    }

    if (const std::size_t mark = c.text.find("blam-shared:"); mark != std::string::npos) {
      const std::string rest = c.text.substr(mark + 12);
      const std::size_t dash = rest.find("--");
      const std::string mechanism =
          trim(dash == std::string::npos ? rest : rest.substr(0, dash));
      const std::string reason =
          dash == std::string::npos ? std::string{} : trim(rest.substr(dash + 2));
      if (mechanism.empty() || reason.empty()) {
        out.issues.push_back({c.line,
                              "malformed blam-shared annotation: expected `blam-shared: "
                              "<sync mechanism> -- <reason>`"});
      } else {
        out.shared[target] = SharedNote{mechanism, reason};
      }
    }
  }
  return out;
}

}  // namespace detail

namespace {

using lint::TokKind;
using lint::Token;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

[[nodiscard]] bool is_qual_keyword(const std::string& t) {
  static constexpr std::array<std::string_view, 12> kQuals = {
      "static",   "const",  "constexpr", "mutable",      "inline",   "extern",
      "volatile", "friend", "virtual",   "thread_local", "explicit", "typename"};
  return std::find(kQuals.begin(), kQuals.end(), t) != kQuals.end();
}

/// Identifiers that a `(` may follow without opening a parameter list.
[[nodiscard]] bool is_paren_keyword(const std::string& t) {
  static constexpr std::array<std::string_view, 9> kKw = {
      "alignas", "decltype", "noexcept", "sizeof", "if", "while", "for", "switch", "return"};
  return std::find(kKw.begin(), kKw.end(), t) != kKw.end();
}

/// Renders a token range as a compact type string ("std::optional<Foo>").
[[nodiscard]] std::string join_tokens(const std::vector<Token>& toks, std::size_t begin,
                                      std::size_t end) {
  std::string out;
  std::string prev;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    const std::string& x = toks[i].text;
    if (is_qual_keyword(x)) continue;
    const bool tight_prev = prev == "::" || prev == "<" || prev == "(" || prev == "[" ||
                            prev == "*" || prev == "&" || prev == "~" || prev.empty();
    const bool tight_cur = x == "::" || x == "<" || x == ">" || x == "," || x == "*" ||
                           x == "&" || x == "(" || x == ")" || x == "[" || x == "]";
    if (!out.empty() && !tight_prev && !tight_cur) out += ' ';
    if (x == ",") {
      out += ", ";
      prev = "<";  // next token joins tightly after the comma-space
      continue;
    }
    out += x;
    prev = x;
  }
  return out;
}

class StructureParser {
 public:
  StructureParser(TranslationUnit& unit, const detail::Annotations& notes)
      : toks_{unit.src.tokens}, unit_{unit}, notes_{notes} {}

  void run() {
    parse_decl_seq(nullptr);
    collect_function_local_statics();
  }

 private:
  const std::vector<Token>& toks_;
  TranslationUnit& unit_;
  const detail::Annotations& notes_;
  std::size_t i_{0};

  [[nodiscard]] bool done() const { return i_ >= toks_.size(); }

  [[nodiscard]] const Token& tok(std::size_t ahead = 0) const {
    static const Token kEof{TokKind::kPunct, "", 0, 0};
    return i_ + ahead < toks_.size() ? toks_[i_ + ahead] : kEof;
  }

  [[nodiscard]] bool at(std::string_view text) const { return tok().text == text; }

  [[nodiscard]] bool at_ident(std::string_view text) const {
    return tok().kind == TokKind::kIdentifier && tok().text == text;
  }

  /// Consumes a balanced group; the current token must be `open`. Stops at
  /// EOF gracefully.
  void skip_group(std::string_view open, std::string_view close) {
    int depth = 0;
    while (!done()) {
      if (at(open)) ++depth;
      if (at(close) && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  /// Consumes `< ... >` template arguments (nested angles; parenthesised
  /// sub-expressions skipped wholesale). Bails without consuming the
  /// terminator if `;`, `{` or `}` appears at angle depth — the `<` was a
  /// comparison, not a template argument list.
  void skip_angles() {
    int depth = 0;
    while (!done()) {
      if (at("(")) {
        skip_group("(", ")");
        continue;
      }
      if (at(";") || at("{") || at("}")) return;
      if (at("<")) ++depth;
      if (at(">") && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  /// Consumes to the `;` ending the current statement, matching brackets.
  void skip_statement() {
    while (!done()) {
      if (at(";")) {
        ++i_;
        return;
      }
      if (at("}")) return;  // scope closer: leave it for the caller
      if (at("{")) {
        skip_group("{", "}");
        continue;
      }
      if (at("(")) {
        skip_group("(", ")");
        continue;
      }
      ++i_;
    }
  }

  void skip_attributes() {
    while (at("[") && tok(1).text == "[") {
      ++i_;
      skip_group("[", "]");
      if (at("]")) ++i_;
    }
  }

  /// Declaration/definition sequence inside a namespace (`cls == nullptr`)
  /// or class body (`cls != nullptr`). Consumes the closing `}` of the
  /// scope, if any.
  void parse_decl_seq(ClassInfo* cls) {
    while (!done()) {
      if (at("}")) {
        ++i_;
        return;
      }
      if (at(";")) {
        ++i_;
        continue;
      }
      skip_attributes();
      if (tok().kind == TokKind::kIdentifier) {
        const std::string& kw = tok().text;
        if (kw == "namespace") {
          parse_namespace();
          continue;
        }
        if (kw == "inline" && tok(1).text == "namespace") {
          ++i_;
          parse_namespace();
          continue;
        }
        if (kw == "template") {
          ++i_;
          if (at("<")) skip_angles();
          continue;  // the templated declaration parses normally
        }
        if (kw == "using" || kw == "typedef" || kw == "static_assert" || kw == "friend") {
          skip_statement();
          continue;
        }
        if ((kw == "public" || kw == "private" || kw == "protected") && tok(1).text == ":") {
          i_ += 2;
          continue;
        }
        if (kw == "extern" && tok(1).kind == TokKind::kString) {
          i_ += 2;
          if (at("{")) {
            ++i_;
            parse_decl_seq(cls);
          }
          continue;
        }
        if (kw == "enum") {
          while (!done() && !at("{") && !at(";")) ++i_;
          if (at("{")) skip_group("{", "}");
          skip_statement();
          continue;
        }
        if ((kw == "class" || kw == "struct" || kw == "union") && class_definition_ahead()) {
          parse_class(cls);
          continue;
        }
      }
      parse_declaration(cls);
    }
  }

  void parse_namespace() {
    ++i_;  // `namespace`
    while (!done() && !at("{") && !at(";") && !at("=")) ++i_;
    if (at("{")) {
      ++i_;
      parse_decl_seq(nullptr);
      return;
    }
    skip_statement();  // alias or weirdness
  }

  /// After `class`/`struct`/`union`: is a definition body coming (vs a
  /// forward declaration or an elaborated-type specifier in a declaration)?
  [[nodiscard]] bool class_definition_ahead() const {
    std::size_t j = i_ + 1;
    // attributes
    while (j + 1 < toks_.size() && toks_[j].text == "[" && toks_[j + 1].text == "[") {
      int depth = 0;
      for (; j < toks_.size(); ++j) {
        if (toks_[j].text == "[") ++depth;
        if (toks_[j].text == "]" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    if (j < toks_.size() && toks_[j].text == "{") return true;  // anonymous
    // name: ident (:: ident)*
    if (j >= toks_.size() || toks_[j].kind != TokKind::kIdentifier) return false;
    ++j;
    while (j + 1 < toks_.size() && toks_[j].text == "::" &&
           toks_[j + 1].kind == TokKind::kIdentifier) {
      j += 2;
    }
    if (j < toks_.size() && toks_[j].kind == TokKind::kIdentifier && toks_[j].text == "final") {
      ++j;
    }
    return j < toks_.size() && (toks_[j].text == "{" || toks_[j].text == ":");
  }

  void parse_class(ClassInfo* parent) {
    const bool is_struct = !at("class");
    const int decl_line = tok().line;
    ++i_;
    skip_attributes();
    std::string name;
    if (tok().kind == TokKind::kIdentifier) {
      name = tok().text;
      ++i_;
      while (at("::") && tok(1).kind == TokKind::kIdentifier) {
        name += "::" + tok(1).text;
        i_ += 2;
      }
    }
    if (at_ident("final")) ++i_;

    std::vector<std::string> bases;
    if (at(":")) {
      ++i_;
      std::string cur;
      while (!done() && !at("{") && !at(";")) {
        const Token& t = tok();
        if (t.text == ",") {
          if (!cur.empty()) bases.push_back(cur);
          cur.clear();
          ++i_;
          continue;
        }
        if (t.kind == TokKind::kIdentifier &&
            (t.text == "public" || t.text == "private" || t.text == "protected" ||
             t.text == "virtual")) {
          ++i_;
          continue;
        }
        if (t.text == "<") {
          skip_angles();  // base template arguments do not name the base
          continue;
        }
        if (t.text == "::" || t.kind == TokKind::kIdentifier) {
          cur += t.text;
          ++i_;
          continue;
        }
        ++i_;
      }
      if (!cur.empty()) bases.push_back(cur);
    }

    if (!at("{")) {
      skip_statement();
      return;
    }

    ClassInfo info;
    info.name = name.empty() ? "<anonymous@" + std::to_string(decl_line) + ">" : name;
    if (parent != nullptr) info.name = parent->name + "::" + info.name;
    info.line = decl_line;
    info.is_struct = is_struct;
    info.bases = std::move(bases);
    ++i_;  // `{`
    parse_decl_seq(&info);
    const std::string type_name = info.name;
    unit_.classes.push_back(std::move(info));

    // `struct X { ... } member_;` — trailing declarators take the class as
    // their type (members when inside a class, globals at namespace scope).
    while (!done() && !at(";") && !at("}")) {
      if (tok().kind == TokKind::kIdentifier) {
        if (parent != nullptr) {
          add_member(parent, tok().text, type_name, tok().line, /*is_bitfield=*/false,
                     /*is_const=*/false, /*is_atomic=*/false);
        } else {
          add_static(StaticDecl::Kind::kGlobal, tok().text, type_name, tok().line,
                     /*is_const=*/false, /*is_atomic=*/false, /*is_thread_local=*/false);
        }
      }
      ++i_;
    }
  }

  void add_member(ClassInfo* cls, const std::string& name, std::string type, int line,
                  bool is_bitfield, bool is_const, bool is_atomic, int decl_start_line = 0) {
    MemberDecl m;
    m.name = name;
    m.type = std::move(type);
    m.line = line;
    m.is_bitfield = is_bitfield;
    m.is_const = is_const;
    m.is_atomic = is_atomic;
    auto note = notes_.ckpt.find(line);
    if (note == notes_.ckpt.end() && decl_start_line != 0) {
      note = notes_.ckpt.find(decl_start_line);
    }
    if (note != notes_.ckpt.end()) {
      m.ckpt_skip = true;
      m.ckpt_reason = note->second.reason;
    }
    cls->members.push_back(std::move(m));
  }

  void add_static(StaticDecl::Kind kind, const std::string& name, std::string type, int line,
                  bool is_const, bool is_atomic, bool is_thread_local, int decl_start_line = 0) {
    StaticDecl s;
    s.kind = kind;
    s.name = name;
    s.type = std::move(type);
    s.line = line;
    s.is_const = is_const;
    s.is_atomic = is_atomic;
    s.is_thread_local = is_thread_local;
    auto note = notes_.shared.find(line);
    if (note == notes_.shared.end() && decl_start_line != 0) {
      note = notes_.shared.find(decl_start_line);
    }
    if (note != notes_.shared.end()) {
      s.shared_annotated = true;
      s.shared_mechanism = note->second.mechanism;
      s.shared_reason = note->second.reason;
    }
    unit_.statics.push_back(std::move(s));
  }

  /// One declaration at class or namespace scope: a data member, a
  /// global/static variable, a function declaration, or a function
  /// definition (body recorded, contents skipped).
  void parse_declaration(ClassInfo* cls) {
    const std::size_t start = i_;
    const int start_line = tok().line;
    bool saw_static = false;
    bool saw_const = false;
    bool saw_extern = false;
    bool saw_thread_local = false;
    bool saw_atomic = false;
    bool saw_operator = false;
    std::size_t last_ident = kNone;
    std::size_t ident_count = 0;
    bool have_params = false;
    std::string fn_name;
    std::string fn_qualifier;
    std::vector<std::pair<std::size_t, std::size_t>> param_range;  // [open, close]
    std::vector<std::size_t> extra_names;                          // multi-declarator commas

    const auto finalize_variable = [&](bool is_bitfield) {
      if (last_ident == kNone || ident_count < 2) return;  // no type before the name
      std::vector<std::size_t> names = extra_names;
      names.push_back(last_ident);
      for (const std::size_t n : names) {
        const std::string& name = toks_[n].text;
        const std::string type = join_tokens(toks_, start, names.front());
        if (cls != nullptr && !saw_static) {
          add_member(cls, name, type, toks_[n].line, is_bitfield, saw_const, saw_atomic,
                     start_line);
        } else if (cls != nullptr) {
          add_static(StaticDecl::Kind::kClassStatic, name, type, toks_[n].line, saw_const,
                     saw_atomic, saw_thread_local, start_line);
        } else if (!saw_extern) {
          add_static(saw_static ? StaticDecl::Kind::kNamespaceStatic : StaticDecl::Kind::kGlobal,
                     name, type, toks_[n].line, saw_const, saw_atomic, saw_thread_local,
                     start_line);
        }
      }
    };

    // Phase 1: type + declarator, until an initializer, a parameter list,
    // a bitfield width, or the terminating `;`.
    while (!done()) {
      const Token& t = tok();
      const std::string& x = t.text;
      if (t.kind == TokKind::kIdentifier) {
        if (x == "static") saw_static = true;
        if (x == "const" || x == "constexpr" || x == "constinit") saw_const = true;
        if (x == "extern") saw_extern = true;
        if (x == "thread_local") saw_thread_local = true;
        if (x == "atomic") saw_atomic = true;
        if (x == "operator") {
          saw_operator = true;
          fn_name = "operator";
          ++i_;
          // the operator symbol: puncts (or new/delete/[]/()) up to the
          // parameter list
          while (!done() && !at("(") && !at(";") && !at("{") && !at("}")) {
            fn_name += tok().text;
            ++i_;
          }
          if (at("(") && tok(1).text == ")") {
            fn_name += "()";
            i_ += 2;  // operator() — the NEXT group is the parameter list
          }
          if (at("(")) {
            const std::size_t open = i_;
            skip_group("(", ")");
            param_range.emplace_back(open, i_ - 1);
            have_params = true;
            break;  // into phase 2
          }
          continue;
        }
        // Elaborated type keywords are part of the type, not a declared
        // name — `class NetworkServer;` declares nothing.
        if (!is_qual_keyword(x) && x != "class" && x != "struct" && x != "union" && x != "enum") {
          last_ident = i_;
          ++ident_count;
        }
        ++i_;
        continue;
      }
      if (x == "::") {
        ++i_;
        continue;
      }
      if (x == "<" && i_ > start && toks_[i_ - 1].kind == TokKind::kIdentifier) {
        skip_angles();
        continue;
      }
      if (x == "(") {
        const bool callable_name = last_ident != kNone && i_ > start &&
                                   toks_[i_ - 1].kind == TokKind::kIdentifier &&
                                   !is_paren_keyword(toks_[i_ - 1].text);
        const std::size_t open = i_;
        skip_group("(", ")");
        if (callable_name && !have_params) {
          param_range.emplace_back(open, i_ - 1);
          have_params = true;
          fn_name = toks_[last_ident].text;
          // out-of-class qualifier: `void Node::restore_state(...)`
          std::size_t k = last_ident;
          while (k >= 2 && toks_[k - 1].text == "::" &&
                 toks_[k - 2].kind == TokKind::kIdentifier) {
            fn_qualifier =
                toks_[k - 2].text + (fn_qualifier.empty() ? "" : "::") + fn_qualifier;
            k -= 2;
          }
          if (k >= 1 && toks_[k - 1].text == "~") fn_name = "~" + fn_name;
          break;  // into phase 2
        }
        continue;
      }
      if (x == "[") {
        if (tok(1).text == "[") {
          skip_group("[", "]");
          continue;
        }
        skip_group("[", "]");  // array declarator
        continue;
      }
      if (x == "=") {
        skip_statement();
        finalize_variable(false);
        return;
      }
      if (x == "{") {  // brace initializer: `Time now_{Time::zero()};`
        skip_group("{", "}");
        skip_statement();
        finalize_variable(false);
        return;
      }
      if (x == ":") {
        // bitfield inside a class; anything else colon-shaped at namespace
        // scope is noise — skip the statement either way
        skip_statement();
        if (cls != nullptr) finalize_variable(true);
        return;
      }
      if (x == ",") {
        if (last_ident != kNone) extra_names.push_back(last_ident);
        ++i_;
        continue;
      }
      if (x == ";") {
        ++i_;
        finalize_variable(false);
        return;
      }
      if (x == "}") return;  // scope closer: malformed declaration, bail
      ++i_;
    }

    if (!have_params) return;  // EOF mid-declaration

    // Phase 2: after the parameter list — qualifiers, trailing return,
    // ctor-init list, then either `;` (declaration), `= ...;` (defaulted/
    // deleted/pure), or `{` (definition).
    while (!done()) {
      const std::string& x = tok().text;
      if (x == "{") {
        record_function(cls, fn_qualifier, fn_name, start_line, param_range, saw_operator);
        return;
      }
      if (x == ";") {
        ++i_;
        if (cls != nullptr && !fn_name.empty()) cls->member_functions.push_back(fn_name);
        return;
      }
      if (x == "=") {
        skip_statement();
        if (cls != nullptr && !fn_name.empty()) cls->member_functions.push_back(fn_name);
        return;
      }
      if (x == "(") {
        skip_group("(", ")");  // noexcept(...)
        continue;
      }
      if (x == ":") {
        // ctor-init list: `member_{...}` / `member_(...)` items, then the
        // body brace (recognized by NOT following an identifier/template
        // close).
        ++i_;
        while (!done()) {
          const std::string& y = tok().text;
          if (y == "(") {
            skip_group("(", ")");
            continue;
          }
          if (y == "{") {
            const Token& prev = toks_[i_ - 1];
            if (prev.kind == TokKind::kIdentifier || prev.text == ">") {
              skip_group("{", "}");  // an init brace
              continue;
            }
            record_function(cls, fn_qualifier, fn_name, start_line, param_range, saw_operator);
            return;
          }
          if (y == ";") {
            ++i_;
            return;
          }
          if (y == "}") return;
          ++i_;
        }
        return;
      }
      if (x == "}") return;
      ++i_;
    }
  }

  void record_function(ClassInfo* cls, const std::string& qualifier, const std::string& name,
                       int line, const std::vector<std::pair<std::size_t, std::size_t>>& params,
                       bool is_operator) {
    FunctionDef def;
    def.class_name = cls != nullptr ? cls->name : qualifier;
    def.name = name;
    def.line = line;
    if (!params.empty()) def.params = parse_params(params.back().first, params.back().second);
    def.body_begin = i_;
    skip_group("{", "}");
    def.body_end = i_;
    if (cls != nullptr && !name.empty() && !is_operator) cls->member_functions.push_back(name);
    if (!def.name.empty()) unit_.functions.push_back(std::move(def));
  }

  /// Parses `( ... )` at [open, close] into typed parameters. The name is
  /// the last top-level identifier of each comma-separated chunk (before a
  /// default argument, if any); single-token chunks are unnamed.
  [[nodiscard]] std::vector<ParamDecl> parse_params(std::size_t open, std::size_t close) const {
    std::vector<ParamDecl> out;
    std::size_t chunk_begin = open + 1;
    int paren = 0;
    int angle = 0;
    int brace = 0;
    const auto flush = [&](std::size_t chunk_end) {
      if (chunk_end <= chunk_begin) return;
      std::size_t name_idx = kNone;
      std::size_t limit = chunk_end;
      int a = 0;
      for (std::size_t j = chunk_begin; j < chunk_end; ++j) {
        const std::string& x = toks_[j].text;
        if (x == "<" && j > chunk_begin && toks_[j - 1].kind == TokKind::kIdentifier) ++a;
        if (x == ">" && a > 0) --a;
        if (x == "=" && a == 0) {
          limit = j;
          break;
        }
      }
      a = 0;
      std::size_t idents = 0;
      for (std::size_t j = chunk_begin; j < limit; ++j) {
        const std::string& x = toks_[j].text;
        if (x == "<" && j > chunk_begin && toks_[j - 1].kind == TokKind::kIdentifier) ++a;
        if (x == ">" && a > 0) --a;
        if (a == 0 && toks_[j].kind == TokKind::kIdentifier && !is_qual_keyword(x)) {
          name_idx = j;
          ++idents;
        }
      }
      ParamDecl p;
      if (idents >= 2 && name_idx != kNone) {
        p.name = toks_[name_idx].text;
        p.type = join_tokens(toks_, chunk_begin, name_idx);
      } else {
        p.type = join_tokens(toks_, chunk_begin, limit);
      }
      if (!p.type.empty() || !p.name.empty()) out.push_back(std::move(p));
    };
    for (std::size_t j = open + 1; j < close; ++j) {
      const std::string& x = toks_[j].text;
      if (x == "(") ++paren;
      if (x == ")") --paren;
      if (x == "{") ++brace;
      if (x == "}") --brace;
      if (x == "<" && j > open + 1 && toks_[j - 1].kind == TokKind::kIdentifier) ++angle;
      if (x == ">" && angle > 0) --angle;
      if (x == "," && paren == 0 && angle == 0 && brace == 0) {
        flush(j);
        chunk_begin = j + 1;
      }
    }
    flush(close);
    return out;
  }

  /// Post-pass: `static` locals inside every recorded function body.
  void collect_function_local_statics() {
    for (const FunctionDef& def : unit_.functions) {
      for (std::size_t j = def.body_begin; j + 1 < def.body_end; ++j) {
        if (toks_[j].kind != TokKind::kIdentifier || toks_[j].text != "static") continue;
        const int stmt_line = toks_[j].line;
        bool is_const = false;
        bool is_atomic = false;
        bool is_thread_local = false;
        std::size_t last_ident = kNone;
        std::size_t idents = 0;
        std::size_t k = j + 1;
        bool function_like = false;
        for (; k < def.body_end; ++k) {
          const Token& t = toks_[k];
          const std::string& x = t.text;
          if (t.kind == TokKind::kIdentifier) {
            if (x == "const" || x == "constexpr") is_const = true;
            if (x == "atomic") is_atomic = true;
            if (x == "thread_local") is_thread_local = true;
            if (!is_qual_keyword(x)) {
              last_ident = k;
              ++idents;
            }
            continue;
          }
          if (x == "<" && toks_[k - 1].kind == TokKind::kIdentifier) {
            int depth = 0;
            for (; k < def.body_end; ++k) {
              if (toks_[k].text == "<") ++depth;
              if (toks_[k].text == ">" && --depth == 0) break;
              if (toks_[k].text == ";") break;
            }
            continue;
          }
          if (x == "(" && last_ident != kNone && toks_[k - 1].kind == TokKind::kIdentifier) {
            function_like = true;  // `static int helper();` — not state
            break;
          }
          if (x == "::" || x == "*" || x == "&" || x == "[" || x == "]") continue;
          if (x == ";" || x == "=" || x == "{") break;
          break;
        }
        if (function_like || last_ident == kNone || idents < 2) continue;
        StaticDecl s;
        s.kind = StaticDecl::Kind::kFunctionLocal;
        s.name = toks_[last_ident].text;
        s.type = join_tokens(toks_, j + 1, last_ident);
        s.line = toks_[last_ident].line;
        s.is_const = is_const;
        s.is_atomic = is_atomic;
        s.is_thread_local = is_thread_local;
        auto note = notes_.shared.find(s.line);
        if (note == notes_.shared.end()) note = notes_.shared.find(stmt_line);
        if (note != notes_.shared.end()) {
          s.shared_annotated = true;
          s.shared_mechanism = note->second.mechanism;
          s.shared_reason = note->second.reason;
        }
        unit_.statics.push_back(std::move(s));
      }
    }
  }
};

[[nodiscard]] std::string normalize_path(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

void extract_includes(TranslationUnit& unit) {
  for (const lint::Directive& d : unit.src.directives) {
    const std::string text = detail::trim(d.text);
    if (text.rfind("include", 0) != 0) continue;
    const std::string rest = detail::trim(text.substr(7));
    if (rest.size() < 2) continue;
    IncludeDecl inc;
    inc.line = d.line;
    if (rest.front() == '"') {
      const std::size_t end = rest.find('"', 1);
      if (end == std::string::npos) continue;
      inc.target = rest.substr(1, end - 1);
      inc.quoted = true;
    } else if (rest.front() == '<') {
      const std::size_t end = rest.find('>', 1);
      if (end == std::string::npos) continue;
      inc.target = rest.substr(1, end - 1);
      inc.quoted = false;
    } else {
      continue;
    }
    unit.includes.push_back(std::move(inc));
  }
}

}  // namespace

TranslationUnit parse_unit(const std::string& path, std::string_view source) {
  TranslationUnit unit;
  unit.path = normalize_path(path);
  unit.src = lint::tokenize(source);
  const detail::Annotations notes = detail::parse_annotations(unit.src);
  StructureParser parser{unit, notes};
  parser.run();
  extract_includes(unit);
  return unit;
}

}  // namespace blam::analyze
