// Schema validation for the committed BENCH_*.json throughput/regression
// artifacts (PR 7 satellite). The bench binaries emit these by hand-rolled
// snprintf, and CI gates against the committed numbers — so a malformed or
// silently-NaN artifact would neuter the gates. This checker parses each
// file with a dependency-free JSON parser and enforces, per bench:
//
//  * the required keys exist with the right types,
//  * every number in the file is finite (no NaN/Inf anywhere),
//  * grid axes are strictly monotone (batch_sweep.batch, dirty_sweep.
//    dirty_fraction, the fault grid's (loss, reorder, corrupt) triple),
//  * boolean invariants hold (bit_identical / checkpoint_exact are true).
//
// Unknown BENCH_*.json files get the generic contract: valid JSON, a
// non-empty top-level object, all numbers finite.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blam::benchschema {

/// Parsed JSON value (objects preserve key order; numbers are doubles).
struct JsonValue {
  enum class Kind { kObject, kArray, kNumber, kString, kBool, kNull };
  Kind kind{Kind::kNull};
  double number{0.0};
  bool boolean{false};
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;
};

/// Parses strict JSON; throws std::runtime_error with a byte offset on
/// syntax errors (including the non-JSON NaN/Infinity literals).
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Validates `text` as the bench artifact named `filename` (basename picks
/// the schema). Returns human-readable violations; empty means the file
/// passes.
[[nodiscard]] std::vector<std::string> check_bench_json(const std::string& filename,
                                                        std::string_view text);

}  // namespace blam::benchschema
