#include "bench_schema_check/schema_check.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace blam::benchschema {

namespace {

// --- parser -----------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"json: " + what + " at byte " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    fail("unexpected character");
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
          case 'f':
            out.push_back(' ');
            break;
          case 'u': {
            // Bench artifacts are ASCII; accept and round-trip as '?'.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            pos_ += 4;
            out.push_back('?');
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      out.push_back(c);
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = parsed;  // overflow to +-inf is caught by the finite check
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

// --- schema helpers ---------------------------------------------------------

const JsonValue* find(const JsonValue& object, const std::string& key) {
  if (object.kind != JsonValue::Kind::kObject) return nullptr;
  for (const auto& [k, v] : object.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

class Checker {
 public:
  explicit Checker(std::string name) : name_{std::move(name)} {}

  void issue(const std::string& what) { issues_.push_back(name_ + ": " + what); }

  /// Every number anywhere in the tree must be finite.
  void check_finite(const JsonValue& v, const std::string& path) {
    switch (v.kind) {
      case JsonValue::Kind::kNumber:
        if (!std::isfinite(v.number)) issue(path + " is not finite");
        break;
      case JsonValue::Kind::kObject:
        for (const auto& [k, child] : v.object) check_finite(child, path + "." + k);
        break;
      case JsonValue::Kind::kArray:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          check_finite(v.array[i], path + "[" + std::to_string(i) + "]");
        }
        break;
      default:
        break;
    }
  }

  const JsonValue* require(const JsonValue& root, const std::string& key, JsonValue::Kind kind,
                           const char* kind_name) {
    const JsonValue* v = find(root, key);
    if (v == nullptr) {
      issue("missing required key \"" + key + "\"");
      return nullptr;
    }
    if (v->kind != kind) {
      issue("key \"" + key + "\" must be a " + kind_name);
      return nullptr;
    }
    return v;
  }

  const JsonValue* require_number(const JsonValue& root, const std::string& key) {
    return require(root, key, JsonValue::Kind::kNumber, "number");
  }

  void require_true(const JsonValue& root, const std::string& key) {
    const JsonValue* v = require(root, key, JsonValue::Kind::kBool, "boolean");
    if (v != nullptr && !v->boolean) issue("key \"" + key + "\" must be true");
  }

  /// `array` must be a non-empty array of objects whose `axis` member is a
  /// strictly increasing number.
  void require_monotone_axis(const JsonValue& root, const std::string& array_key,
                             const std::string& axis) {
    const JsonValue* arr = require(root, array_key, JsonValue::Kind::kArray, "array");
    if (arr == nullptr) return;
    if (arr->array.empty()) {
      issue("array \"" + array_key + "\" must not be empty");
      return;
    }
    double prev = 0.0;
    bool have_prev = false;
    for (std::size_t i = 0; i < arr->array.size(); ++i) {
      const JsonValue* v = find(arr->array[i], axis);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        issue(array_key + "[" + std::to_string(i) + "] lacks numeric \"" + axis + "\"");
        return;
      }
      if (have_prev && !(v->number > prev)) {
        issue(array_key + "." + axis + " axis not strictly increasing at index " +
              std::to_string(i));
        return;
      }
      prev = v->number;
      have_prev = true;
    }
  }

  [[nodiscard]] std::vector<std::string> take() { return std::move(issues_); }

 private:
  std::string name_;
  std::vector<std::string> issues_;
};

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

void check_hotpath(Checker& check, const JsonValue& root) {
  for (const char* key : {"nodes", "days", "events_executed", "packets_generated",
                          "packets_delivered", "wall_s", "events_per_s"}) {
    check.require_number(root, key);
  }
  check.require(root, "policy", JsonValue::Kind::kString, "string");
  if (const JsonValue* v = check.require_number(root, "events_per_s");
      v != nullptr && v->number <= 0.0) {
    check.issue("events_per_s must be positive");
  }
}

void check_fault(Checker& check, const JsonValue& root) {
  for (const char* key : {"feed_nodes", "feed_days", "oracle_min_lifespan_years"}) {
    check.require_number(root, key);
  }
  check.require_true(root, "lifespan_within_5pct_up_to_20pct_loss");
  check.require_true(root, "checkpoint_exact");
  const JsonValue* cells = check.require(root, "cells", JsonValue::Kind::kArray, "array");
  if (cells == nullptr || cells->array.empty()) {
    if (cells != nullptr) check.issue("array \"cells\" must not be empty");
    return;
  }
  // The fault grid is ordered lexicographically by (loss, reorder, corrupt).
  double prev[3] = {0.0, 0.0, 0.0};
  bool have_prev = false;
  for (std::size_t i = 0; i < cells->array.size(); ++i) {
    const JsonValue& cell = cells->array[i];
    double axes[3] = {0.0, 0.0, 0.0};
    const char* axis_keys[3] = {"loss", "reorder", "corrupt"};
    for (int a = 0; a < 3; ++a) {
      const JsonValue* v = find(cell, axis_keys[a]);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        check.issue("cells[" + std::to_string(i) + "] lacks numeric \"" + axis_keys[a] + "\"");
        return;
      }
      axes[a] = v->number;
    }
    for (const char* key : {"w_err_avg", "w_err_max", "life_err_pct"}) {
      const JsonValue* v = find(cell, key);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        check.issue("cells[" + std::to_string(i) + "] lacks numeric \"" + key + "\"");
      }
    }
    if (have_prev) {
      const bool ascending = axes[0] > prev[0] || (axes[0] == prev[0] && axes[1] > prev[1]) ||
                             (axes[0] == prev[0] && axes[1] == prev[1] && axes[2] > prev[2]);
      if (!ascending) {
        check.issue("cells (loss, reorder, corrupt) grid not strictly increasing at index " +
                    std::to_string(i));
        return;
      }
    }
    prev[0] = axes[0];
    prev[1] = axes[1];
    prev[2] = axes[2];
    have_prev = true;
  }
}

void check_ingest(Checker& check, const JsonValue& root) {
  for (const char* key : {"nodes", "rounds", "samples_per_report", "reports_ingested",
                          "bytes_per_trace", "wall_s", "traces_per_s", "samples_per_s",
                          "arena_pool_elements"}) {
    check.require_number(root, key);
  }
  check.require_true(root, "bit_identical");
  if (const JsonValue* v = check.require_number(root, "traces_per_s");
      v != nullptr && v->number <= 0.0) {
    check.issue("traces_per_s must be positive");
  }
  check.require_monotone_axis(root, "batch_sweep", "batch");
  check.require_monotone_axis(root, "dirty_sweep", "dirty_fraction");
}

void check_resume(Checker& check, const JsonValue& root) {
  for (const char* key : {"nodes", "gateways", "shards", "days", "epochs", "kill_epoch",
                          "checkpoint_bytes", "checkpoint_write_s", "restore_s", "fresh_wall_s",
                          "resumed_wall_s"}) {
    check.require_number(root, key);
  }
  check.require_true(root, "bit_identical");
  if (const JsonValue* v = check.require_number(root, "checkpoint_bytes");
      v != nullptr && v->number <= 0.0) {
    check.issue("checkpoint_bytes must be positive");
  }
  const JsonValue* epochs = find(root, "epochs");
  const JsonValue* kill = find(root, "kill_epoch");
  if (epochs != nullptr && kill != nullptr && epochs->kind == JsonValue::Kind::kNumber &&
      kill->kind == JsonValue::Kind::kNumber &&
      !(kill->number > 0.0 && kill->number < epochs->number)) {
    check.issue("kill_epoch must fall strictly inside (0, epochs)");
  }
}

void check_shard(Checker& check, const JsonValue& root) {
  check.require_number(root, "host_cores");
  check.require(root, "metric_note", JsonValue::Kind::kString, "string");
  check.require_true(root, "bit_identical");
  const JsonValue* deployments =
      check.require(root, "deployments", JsonValue::Kind::kArray, "array");
  if (deployments == nullptr || deployments->array.empty()) {
    if (deployments != nullptr) check.issue("array \"deployments\" must not be empty");
    return;
  }
  for (std::size_t d = 0; d < deployments->array.size(); ++d) {
    const JsonValue& dep = deployments->array[d];
    const std::string where = "deployments[" + std::to_string(d) + "]";
    if (find(dep, "name") == nullptr) check.issue(where + " lacks \"name\"");
    for (const char* key : {"nodes", "gateways", "days"}) {
      const JsonValue* v = find(dep, key);
      if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
        check.issue(where + " lacks numeric \"" + key + "\"");
      }
    }
    // Shard-count axis must be strictly increasing, serial (1) first.
    check.require_monotone_axis(dep, "runs", "shards");
    const JsonValue* runs = find(dep, "runs");
    if (runs == nullptr || runs->kind != JsonValue::Kind::kArray) continue;
    for (std::size_t r = 0; r < runs->array.size(); ++r) {
      const JsonValue& run = runs->array[r];
      for (const char* key :
           {"shards", "effective_shards", "wall_s", "critical_path_s", "events_executed",
            "events_per_s_wall", "events_per_s_critical_path", "speedup_vs_serial"}) {
        const JsonValue* v = find(run, key);
        if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
          check.issue(where + ".runs[" + std::to_string(r) + "] lacks numeric \"" + key + "\"");
        } else if (v->number <= 0.0) {
          check.issue(where + ".runs[" + std::to_string(r) + "]." + key + " must be positive");
        }
      }
    }
  }
}

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser{text}.parse(); }

std::vector<std::string> check_bench_json(const std::string& filename, std::string_view text) {
  const std::string base = basename_of(filename);
  Checker check{base};
  JsonValue root;
  try {
    root = parse_json(text);
  } catch (const std::exception& e) {
    check.issue(e.what());
    return check.take();
  }
  if (root.kind != JsonValue::Kind::kObject || root.object.empty()) {
    check.issue("top level must be a non-empty object");
    return check.take();
  }
  check.check_finite(root, "$");
  if (base == "BENCH_hotpath.json") {
    check_hotpath(check, root);
  } else if (base == "BENCH_fault.json") {
    check_fault(check, root);
  } else if (base == "BENCH_ingest.json") {
    check_ingest(check, root);
  } else if (base == "BENCH_shard.json") {
    check_shard(check, root);
  } else if (base == "BENCH_resume.json") {
    check_resume(check, root);
  }
  // Unknown BENCH files pass on the generic contract checked above.
  return check.take();
}

}  // namespace blam::benchschema
