// CLI: bench_schema_check BENCH_a.json [BENCH_b.json ...]
// Validates each committed bench artifact against its schema (see
// schema_check.hpp); exits non-zero listing every violation.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_schema_check/schema_check.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_file.json [more.json ...]\n", argv[0]);
    return 2;
  }
  int violations = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in{path};
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      ++violations;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::vector<std::string> issues =
        blam::benchschema::check_bench_json(path, text.str());
    if (issues.empty()) {
      std::printf("OK   %s\n", path.c_str());
      continue;
    }
    for (const std::string& issue : issues) {
      std::fprintf(stderr, "FAIL %s\n", issue.c_str());
      ++violations;
    }
  }
  return violations == 0 ? 0 : 1;
}
