file(REMOVE_RECURSE
  "CMakeFiles/fig4_window_selection.dir/fig4_window_selection.cpp.o"
  "CMakeFiles/fig4_window_selection.dir/fig4_window_selection.cpp.o.d"
  "fig4_window_selection"
  "fig4_window_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_window_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
