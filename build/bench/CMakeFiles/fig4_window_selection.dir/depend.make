# Empty dependencies file for fig4_window_selection.
# This may be replaced when dependencies are built.
