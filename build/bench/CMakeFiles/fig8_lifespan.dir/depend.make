# Empty dependencies file for fig8_lifespan.
# This may be replaced when dependencies are built.
