file(REMOVE_RECURSE
  "CMakeFiles/fig8_lifespan.dir/fig8_lifespan.cpp.o"
  "CMakeFiles/fig8_lifespan.dir/fig8_lifespan.cpp.o.d"
  "fig8_lifespan"
  "fig8_lifespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lifespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
