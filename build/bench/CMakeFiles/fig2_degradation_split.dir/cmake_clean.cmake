file(REMOVE_RECURSE
  "CMakeFiles/fig2_degradation_split.dir/fig2_degradation_split.cpp.o"
  "CMakeFiles/fig2_degradation_split.dir/fig2_degradation_split.cpp.o.d"
  "fig2_degradation_split"
  "fig2_degradation_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_degradation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
