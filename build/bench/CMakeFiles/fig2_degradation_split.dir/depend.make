# Empty dependencies file for fig2_degradation_split.
# This may be replaced when dependencies are built.
