file(REMOVE_RECURSE
  "CMakeFiles/fig3_degradation_influence.dir/fig3_degradation_influence.cpp.o"
  "CMakeFiles/fig3_degradation_influence.dir/fig3_degradation_influence.cpp.o.d"
  "fig3_degradation_influence"
  "fig3_degradation_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_degradation_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
