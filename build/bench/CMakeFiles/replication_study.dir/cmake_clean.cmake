file(REMOVE_RECURSE
  "CMakeFiles/replication_study.dir/replication_study.cpp.o"
  "CMakeFiles/replication_study.dir/replication_study.cpp.o.d"
  "replication_study"
  "replication_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
