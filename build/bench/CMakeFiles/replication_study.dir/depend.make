# Empty dependencies file for replication_study.
# This may be replaced when dependencies are built.
