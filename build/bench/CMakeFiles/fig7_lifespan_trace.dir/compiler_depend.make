# Empty compiler generated dependencies file for fig7_lifespan_trace.
# This may be replaced when dependencies are built.
