file(REMOVE_RECURSE
  "CMakeFiles/fig7_lifespan_trace.dir/fig7_lifespan_trace.cpp.o"
  "CMakeFiles/fig7_lifespan_trace.dir/fig7_lifespan_trace.cpp.o.d"
  "fig7_lifespan_trace"
  "fig7_lifespan_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_lifespan_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
