file(REMOVE_RECURSE
  "CMakeFiles/fig5_energy_degradation.dir/fig5_energy_degradation.cpp.o"
  "CMakeFiles/fig5_energy_degradation.dir/fig5_energy_degradation.cpp.o.d"
  "fig5_energy_degradation"
  "fig5_energy_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_energy_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
