# Empty dependencies file for fig10_deployment_map.
# This may be replaced when dependencies are built.
