file(REMOVE_RECURSE
  "CMakeFiles/fig10_deployment_map.dir/fig10_deployment_map.cpp.o"
  "CMakeFiles/fig10_deployment_map.dir/fig10_deployment_map.cpp.o.d"
  "fig10_deployment_map"
  "fig10_deployment_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_deployment_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
