file(REMOVE_RECURSE
  "CMakeFiles/ablation_chemistry.dir/ablation_chemistry.cpp.o"
  "CMakeFiles/ablation_chemistry.dir/ablation_chemistry.cpp.o.d"
  "ablation_chemistry"
  "ablation_chemistry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chemistry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
