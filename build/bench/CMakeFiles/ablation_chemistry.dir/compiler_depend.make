# Empty compiler generated dependencies file for ablation_chemistry.
# This may be replaced when dependencies are built.
