file(REMOVE_RECURSE
  "CMakeFiles/smart_farm.dir/smart_farm.cpp.o"
  "CMakeFiles/smart_farm.dir/smart_farm.cpp.o.d"
  "smart_farm"
  "smart_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
