# Empty compiler generated dependencies file for smart_farm.
# This may be replaced when dependencies are built.
