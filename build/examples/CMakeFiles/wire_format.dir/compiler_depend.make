# Empty compiler generated dependencies file for wire_format.
# This may be replaced when dependencies are built.
