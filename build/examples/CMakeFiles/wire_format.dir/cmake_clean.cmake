file(REMOVE_RECURSE
  "CMakeFiles/wire_format.dir/wire_format.cpp.o"
  "CMakeFiles/wire_format.dir/wire_format.cpp.o.d"
  "wire_format"
  "wire_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
