file(REMOVE_RECURSE
  "CMakeFiles/lifespan_study.dir/lifespan_study.cpp.o"
  "CMakeFiles/lifespan_study.dir/lifespan_study.cpp.o.d"
  "lifespan_study"
  "lifespan_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifespan_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
