# Empty dependencies file for lifespan_study.
# This may be replaced when dependencies are built.
