# Empty dependencies file for blam_tests.
# This may be replaced when dependencies are built.
