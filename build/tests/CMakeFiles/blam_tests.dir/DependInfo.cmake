
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ack_planner.cpp" "tests/CMakeFiles/blam_tests.dir/test_ack_planner.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_ack_planner.cpp.o.d"
  "/root/repo/tests/test_adr.cpp" "tests/CMakeFiles/blam_tests.dir/test_adr.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_adr.cpp.o.d"
  "/root/repo/tests/test_airtime.cpp" "tests/CMakeFiles/blam_tests.dir/test_airtime.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_airtime.cpp.o.d"
  "/root/repo/tests/test_battery.cpp" "tests/CMakeFiles/blam_tests.dir/test_battery.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_battery.cpp.o.d"
  "/root/repo/tests/test_battery_property.cpp" "tests/CMakeFiles/blam_tests.dir/test_battery_property.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_battery_property.cpp.o.d"
  "/root/repo/tests/test_channel_plan.cpp" "tests/CMakeFiles/blam_tests.dir/test_channel_plan.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_channel_plan.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/blam_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/blam_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_degradation_fidelity.cpp" "tests/CMakeFiles/blam_tests.dir/test_degradation_fidelity.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_degradation_fidelity.cpp.o.d"
  "/root/repo/tests/test_degradation_model.cpp" "tests/CMakeFiles/blam_tests.dir/test_degradation_model.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_degradation_model.cpp.o.d"
  "/root/repo/tests/test_degradation_service.cpp" "tests/CMakeFiles/blam_tests.dir/test_degradation_service.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_degradation_service.cpp.o.d"
  "/root/repo/tests/test_degradation_tracker.cpp" "tests/CMakeFiles/blam_tests.dir/test_degradation_tracker.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_degradation_tracker.cpp.o.d"
  "/root/repo/tests/test_dif.cpp" "tests/CMakeFiles/blam_tests.dir/test_dif.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_dif.cpp.o.d"
  "/root/repo/tests/test_duty_cycle.cpp" "tests/CMakeFiles/blam_tests.dir/test_duty_cycle.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_duty_cycle.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/blam_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_ewma.cpp" "tests/CMakeFiles/blam_tests.dir/test_ewma.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_ewma.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/blam_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_gateway.cpp" "tests/CMakeFiles/blam_tests.dir/test_gateway.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_gateway.cpp.o.d"
  "/root/repo/tests/test_interference.cpp" "tests/CMakeFiles/blam_tests.dir/test_interference.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_interference.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/blam_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/blam_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_mac_policies.cpp" "tests/CMakeFiles/blam_tests.dir/test_mac_policies.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_mac_policies.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/blam_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_multi_gateway.cpp" "tests/CMakeFiles/blam_tests.dir/test_multi_gateway.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_multi_gateway.cpp.o.d"
  "/root/repo/tests/test_network_integration.cpp" "tests/CMakeFiles/blam_tests.dir/test_network_integration.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_network_integration.cpp.o.d"
  "/root/repo/tests/test_network_server.cpp" "tests/CMakeFiles/blam_tests.dir/test_network_server.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_network_server.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/blam_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_packet_log.cpp" "tests/CMakeFiles/blam_tests.dir/test_packet_log.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_packet_log.cpp.o.d"
  "/root/repo/tests/test_power_switch.cpp" "tests/CMakeFiles/blam_tests.dir/test_power_switch.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_power_switch.cpp.o.d"
  "/root/repo/tests/test_protocol_properties.cpp" "tests/CMakeFiles/blam_tests.dir/test_protocol_properties.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_protocol_properties.cpp.o.d"
  "/root/repo/tests/test_rainflow.cpp" "tests/CMakeFiles/blam_tests.dir/test_rainflow.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_rainflow.cpp.o.d"
  "/root/repo/tests/test_rainflow_reference.cpp" "tests/CMakeFiles/blam_tests.dir/test_rainflow_reference.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_rainflow_reference.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "tests/CMakeFiles/blam_tests.dir/test_replication.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/test_retx_estimator.cpp" "tests/CMakeFiles/blam_tests.dir/test_retx_estimator.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_retx_estimator.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/blam_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/blam_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_scenario_fuzz.cpp" "tests/CMakeFiles/blam_tests.dir/test_scenario_fuzz.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_scenario_fuzz.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/blam_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_solar.cpp" "tests/CMakeFiles/blam_tests.dir/test_solar.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_solar.cpp.o.d"
  "/root/repo/tests/test_solar_forecaster.cpp" "tests/CMakeFiles/blam_tests.dir/test_solar_forecaster.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_solar_forecaster.cpp.o.d"
  "/root/repo/tests/test_solar_property.cpp" "tests/CMakeFiles/blam_tests.dir/test_solar_property.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_solar_property.cpp.o.d"
  "/root/repo/tests/test_state_sampler.cpp" "tests/CMakeFiles/blam_tests.dir/test_state_sampler.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_state_sampler.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/blam_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_supercap.cpp" "tests/CMakeFiles/blam_tests.dir/test_supercap.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_supercap.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/blam_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_theta_controller.cpp" "tests/CMakeFiles/blam_tests.dir/test_theta_controller.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_theta_controller.cpp.o.d"
  "/root/repo/tests/test_theta_sweep.cpp" "tests/CMakeFiles/blam_tests.dir/test_theta_sweep.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_theta_sweep.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/blam_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traffic_modes.cpp" "tests/CMakeFiles/blam_tests.dir/test_traffic_modes.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_traffic_modes.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/blam_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_utility.cpp" "tests/CMakeFiles/blam_tests.dir/test_utility.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_utility.cpp.o.d"
  "/root/repo/tests/test_window_selector.cpp" "tests/CMakeFiles/blam_tests.dir/test_window_selector.cpp.o" "gcc" "tests/CMakeFiles/blam_tests.dir/test_window_selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/blam.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
