
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/blam.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/blam.dir/common/config.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/blam.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/blam.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/blam.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/blam.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/blam.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/blam.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/blam.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/blam.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/blam.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/blam.dir/common/units.cpp.o.d"
  "/root/repo/src/core/degradation_service.cpp" "src/CMakeFiles/blam.dir/core/degradation_service.cpp.o" "gcc" "src/CMakeFiles/blam.dir/core/degradation_service.cpp.o.d"
  "/root/repo/src/core/dif.cpp" "src/CMakeFiles/blam.dir/core/dif.cpp.o" "gcc" "src/CMakeFiles/blam.dir/core/dif.cpp.o.d"
  "/root/repo/src/core/theta_controller.cpp" "src/CMakeFiles/blam.dir/core/theta_controller.cpp.o" "gcc" "src/CMakeFiles/blam.dir/core/theta_controller.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/CMakeFiles/blam.dir/core/utility.cpp.o" "gcc" "src/CMakeFiles/blam.dir/core/utility.cpp.o.d"
  "/root/repo/src/core/window_selector.cpp" "src/CMakeFiles/blam.dir/core/window_selector.cpp.o" "gcc" "src/CMakeFiles/blam.dir/core/window_selector.cpp.o.d"
  "/root/repo/src/degradation/model.cpp" "src/CMakeFiles/blam.dir/degradation/model.cpp.o" "gcc" "src/CMakeFiles/blam.dir/degradation/model.cpp.o.d"
  "/root/repo/src/degradation/rainflow.cpp" "src/CMakeFiles/blam.dir/degradation/rainflow.cpp.o" "gcc" "src/CMakeFiles/blam.dir/degradation/rainflow.cpp.o.d"
  "/root/repo/src/degradation/tracker.cpp" "src/CMakeFiles/blam.dir/degradation/tracker.cpp.o" "gcc" "src/CMakeFiles/blam.dir/degradation/tracker.cpp.o.d"
  "/root/repo/src/energy/battery.cpp" "src/CMakeFiles/blam.dir/energy/battery.cpp.o" "gcc" "src/CMakeFiles/blam.dir/energy/battery.cpp.o.d"
  "/root/repo/src/energy/power_switch.cpp" "src/CMakeFiles/blam.dir/energy/power_switch.cpp.o" "gcc" "src/CMakeFiles/blam.dir/energy/power_switch.cpp.o.d"
  "/root/repo/src/energy/solar.cpp" "src/CMakeFiles/blam.dir/energy/solar.cpp.o" "gcc" "src/CMakeFiles/blam.dir/energy/solar.cpp.o.d"
  "/root/repo/src/energy/supercap.cpp" "src/CMakeFiles/blam.dir/energy/supercap.cpp.o" "gcc" "src/CMakeFiles/blam.dir/energy/supercap.cpp.o.d"
  "/root/repo/src/energy/thermal.cpp" "src/CMakeFiles/blam.dir/energy/thermal.cpp.o" "gcc" "src/CMakeFiles/blam.dir/energy/thermal.cpp.o.d"
  "/root/repo/src/forecast/ewma.cpp" "src/CMakeFiles/blam.dir/forecast/ewma.cpp.o" "gcc" "src/CMakeFiles/blam.dir/forecast/ewma.cpp.o.d"
  "/root/repo/src/forecast/retx_estimator.cpp" "src/CMakeFiles/blam.dir/forecast/retx_estimator.cpp.o" "gcc" "src/CMakeFiles/blam.dir/forecast/retx_estimator.cpp.o.d"
  "/root/repo/src/forecast/solar_forecaster.cpp" "src/CMakeFiles/blam.dir/forecast/solar_forecaster.cpp.o" "gcc" "src/CMakeFiles/blam.dir/forecast/solar_forecaster.cpp.o.d"
  "/root/repo/src/lora/airtime.cpp" "src/CMakeFiles/blam.dir/lora/airtime.cpp.o" "gcc" "src/CMakeFiles/blam.dir/lora/airtime.cpp.o.d"
  "/root/repo/src/lora/channel_plan.cpp" "src/CMakeFiles/blam.dir/lora/channel_plan.cpp.o" "gcc" "src/CMakeFiles/blam.dir/lora/channel_plan.cpp.o.d"
  "/root/repo/src/lora/interference.cpp" "src/CMakeFiles/blam.dir/lora/interference.cpp.o" "gcc" "src/CMakeFiles/blam.dir/lora/interference.cpp.o.d"
  "/root/repo/src/lora/link.cpp" "src/CMakeFiles/blam.dir/lora/link.cpp.o" "gcc" "src/CMakeFiles/blam.dir/lora/link.cpp.o.d"
  "/root/repo/src/lora/params.cpp" "src/CMakeFiles/blam.dir/lora/params.cpp.o" "gcc" "src/CMakeFiles/blam.dir/lora/params.cpp.o.d"
  "/root/repo/src/mac/adr.cpp" "src/CMakeFiles/blam.dir/mac/adr.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/adr.cpp.o.d"
  "/root/repo/src/mac/blam_mac.cpp" "src/CMakeFiles/blam.dir/mac/blam_mac.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/blam_mac.cpp.o.d"
  "/root/repo/src/mac/codec.cpp" "src/CMakeFiles/blam.dir/mac/codec.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/codec.cpp.o.d"
  "/root/repo/src/mac/device_mac.cpp" "src/CMakeFiles/blam.dir/mac/device_mac.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/device_mac.cpp.o.d"
  "/root/repo/src/mac/duty_cycle.cpp" "src/CMakeFiles/blam.dir/mac/duty_cycle.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/duty_cycle.cpp.o.d"
  "/root/repo/src/mac/frame.cpp" "src/CMakeFiles/blam.dir/mac/frame.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/frame.cpp.o.d"
  "/root/repo/src/mac/gateway_mac.cpp" "src/CMakeFiles/blam.dir/mac/gateway_mac.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/gateway_mac.cpp.o.d"
  "/root/repo/src/mac/greedy_green_mac.cpp" "src/CMakeFiles/blam.dir/mac/greedy_green_mac.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/greedy_green_mac.cpp.o.d"
  "/root/repo/src/mac/lorawan_mac.cpp" "src/CMakeFiles/blam.dir/mac/lorawan_mac.cpp.o" "gcc" "src/CMakeFiles/blam.dir/mac/lorawan_mac.cpp.o.d"
  "/root/repo/src/net/experiment.cpp" "src/CMakeFiles/blam.dir/net/experiment.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/experiment.cpp.o.d"
  "/root/repo/src/net/gateway.cpp" "src/CMakeFiles/blam.dir/net/gateway.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/gateway.cpp.o.d"
  "/root/repo/src/net/interferer.cpp" "src/CMakeFiles/blam.dir/net/interferer.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/interferer.cpp.o.d"
  "/root/repo/src/net/metrics.cpp" "src/CMakeFiles/blam.dir/net/metrics.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/metrics.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/blam.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/network.cpp.o.d"
  "/root/repo/src/net/network_server.cpp" "src/CMakeFiles/blam.dir/net/network_server.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/network_server.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/blam.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet_log.cpp" "src/CMakeFiles/blam.dir/net/packet_log.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/packet_log.cpp.o.d"
  "/root/repo/src/net/replication.cpp" "src/CMakeFiles/blam.dir/net/replication.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/replication.cpp.o.d"
  "/root/repo/src/net/scenario.cpp" "src/CMakeFiles/blam.dir/net/scenario.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/scenario.cpp.o.d"
  "/root/repo/src/net/scenario_io.cpp" "src/CMakeFiles/blam.dir/net/scenario_io.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/scenario_io.cpp.o.d"
  "/root/repo/src/net/state_sampler.cpp" "src/CMakeFiles/blam.dir/net/state_sampler.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/state_sampler.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/blam.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/blam.dir/net/topology.cpp.o.d"
  "/root/repo/src/oracle/tdma_scheduler.cpp" "src/CMakeFiles/blam.dir/oracle/tdma_scheduler.cpp.o" "gcc" "src/CMakeFiles/blam.dir/oracle/tdma_scheduler.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/blam.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/blam.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/blam.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/blam.dir/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
