# Empty compiler generated dependencies file for blam.
# This may be replaced when dependencies are built.
