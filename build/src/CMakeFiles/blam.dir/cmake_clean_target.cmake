file(REMOVE_RECURSE
  "libblam.a"
)
